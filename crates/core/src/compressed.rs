//! Algorithm 1: compressed COD evaluation (§III).
//!
//! Two stages over one shared pool of RR graphs:
//!
//! 1. **Shared sample generation + hierarchical-first search (HFS).** Each
//!    RR graph is traversed once, level by level: a node is recorded in the
//!    bucket of the *deepest* chain community within which it is reachable
//!    from the RR-graph source (Definition 3 / Theorem 2). Per-level FIFO
//!    queues give O(1) insertion, and every RR-graph node is explored once
//!    (Lemma 2).
//! 2. **Incremental top-k evaluation.** Buckets are scanned from the
//!    deepest community upward, accumulating counts (`τ`); by Theorem 3 a
//!    node absent from the current bucket and from the running top-k pool
//!    can never (re-)enter the top-k, so only `(pool ∪ bucket)` needs
//!    re-ranking per level.
//!
//! Total cost `O(Θ·ω + |H(q)|)` (Theorem 4).

use cod_graph::{Csr, FxHashMap, NodeId};
use cod_influence::{
    par_ranges, CancelToken, Model, Parallelism, RrGraph, RrSampler, SeedPolicy, SeedSequence,
};
use rand::prelude::*;

use crate::chain::Chain;
use crate::error::{CodError, CodResult};
use crate::failpoint;
use crate::pool::{PoolView, RrPoolEntry};
use crate::scratch::{HfsScratch, QueryScratch, TopKScratch};
use crate::telemetry::{Counter, Phase, TraceSink};
use std::time::Instant;

/// The result of one compressed COD evaluation.
///
/// `PartialEq` compares every field (including the `f64` sigma estimates
/// bit-for-bit after the IEEE `==`), which is exactly what the seed-replay
/// determinism tests need.
#[derive(Clone, Debug, PartialEq)]
pub struct CodOutcome {
    /// Index (into the chain) of the characteristic community `C*(q)` — the
    /// largest community where `q` ranked top-k — if any.
    pub best_level: Option<usize>,
    /// Per-level estimated 1-based rank of `q`. Exact whenever `≤ k`
    /// (larger values are lower bounds: nodes outside the top-k pool are
    /// not counted).
    pub ranks: Vec<usize>,
    /// Per-level estimated influence `σ̂_{C_h}(q)` (count / Θ · |universe|).
    pub sigma_q: Vec<f64>,
    /// Per-level flag: the top-k verdict could plausibly flip under
    /// sampling noise (an adversarial ±z·√count perturbation changes it).
    /// Drives the adaptive sampler ([`compressed_cod_adaptive`]).
    pub uncertain: Vec<bool>,
    /// Number of RR graphs generated.
    pub theta: usize,
    /// A sample budget cut the evaluation short of the requested `Θ`: the
    /// answer is best-effort and should be flagged `uncertain` downstream.
    pub truncated: bool,
    /// Cooperative cancellation (a deadline, a resource cap, or a forced
    /// failpoint injection) stopped stage 1 at a batch boundary: `theta`
    /// reports the samples actually drawn and the answer is best-effort.
    /// Implies [`CodOutcome::truncated`].
    pub cancelled: bool,
}

impl CodOutcome {
    fn empty() -> Self {
        CodOutcome {
            best_level: None,
            ranks: Vec::new(),
            sigma_q: Vec::new(),
            uncertain: Vec::new(),
            theta: 0,
            truncated: false,
            cancelled: false,
        }
    }
}

/// Runs compressed COD evaluation (Algorithm 1) for query `q` over `chain`.
///
/// `theta_per_node` is the paper's `θ`; the total sample count is
/// `Θ = θ · |universe|` where the universe is the chain's largest community.
/// RR-graph sources are uniform over the universe and traversal is
/// restricted to it (a no-op when the chain tops out at the whole graph).
///
/// Fails with [`CodError::InvalidQuery`] when `k == 0` or `q` is not in the
/// chain's deepest community.
pub fn compressed_cod<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    rng: &mut R,
) -> CodResult<CodOutcome> {
    compressed_cod_budgeted(g, model, chain, q, k, theta_per_node, None, rng)
}

/// [`compressed_cod`] with an optional total-sample budget: when fewer than
/// `Θ = θ·|universe|` samples are allowed, the evaluation runs on whatever
/// the budget permits and marks the outcome [`CodOutcome::truncated`] so
/// callers can flag the answer as uncertain instead of aborting under load.
///
/// Fails with [`CodError::BudgetExhausted`] when the budget permits no
/// samples at all.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus the budget
pub fn compressed_cod_budgeted<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    budget: Option<usize>,
    rng: &mut R,
) -> CodResult<CodOutcome> {
    compressed_cod_with(
        g,
        model,
        chain,
        q,
        k,
        theta_per_node,
        budget,
        SeedPolicy::Stream(rng),
        None,
    )
}

/// The single compressed-COD driver every entry point funnels into:
/// Algorithm 1 with randomness per `policy` and an optional reusable
/// [`QueryScratch`] workspace.
///
/// The drawn samples — and therefore the outcome — depend only on
/// `(g, model, chain, q, k, θ, budget, policy)`. Neither the workspace nor
/// the resolved thread count can change a single bit of the result:
/// [`SeedPolicy::Stream`] replays the legacy caller-RNG stream,
/// [`SeedPolicy::PerIndex`] derives sample `i` from index `i` alone and
/// merges shards by commutative count addition.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus budget, policy, workspace
pub fn compressed_cod_with<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    budget: Option<usize>,
    policy: SeedPolicy<'_, R>,
    scratch: Option<&mut QueryScratch>,
) -> CodResult<CodOutcome> {
    compressed_cod_governed(
        g,
        model,
        chain,
        q,
        k,
        theta_per_node,
        budget,
        policy,
        scratch,
        None,
    )
}

/// Stage-1 draws between governance checkpoints. Polls are this coarse so
/// the ungoverned fast path pays nothing measurable (the ≤5% overhead gate
/// in `bench_report`), yet a fired token stops within one batch.
const CHECK_EVERY: usize = 64;

/// [`compressed_cod_with`] under cooperative governance: every
/// `CHECK_EVERY` draws stage 1 hits the `SampleBatch` failpoint, charges
/// the RR edges traversed since the last poll (and an estimate of live
/// stage-1 memory) against `cancel`'s caps, and — once the token fires —
/// stops at the batch boundary. The partial buckets still run stage 2, so
/// the caller gets a best-effort outcome with [`CodOutcome::cancelled`]
/// (and `truncated`) set and `theta` reporting the draws that completed;
/// a token that fires before the first draw yields an empty outcome
/// with the flags set.
///
/// Checkpoints never touch the RNG, so with `cancel: None` — or a token
/// that never fires — the outcome is bit-identical to the ungoverned path.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus budget, policy, workspace, token
pub fn compressed_cod_governed<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    budget: Option<usize>,
    policy: SeedPolicy<'_, R>,
    scratch: Option<&mut QueryScratch>,
    cancel: Option<&CancelToken>,
) -> CodResult<CodOutcome> {
    if !validate_chain_query(chain, q, k)? {
        return Ok(CodOutcome::empty());
    }
    let m = chain.len();
    let universe = chain.universe();
    let restricted = universe.len() < g.num_nodes();
    let (theta, truncated) = resolve_theta(theta_per_node, universe.len(), budget)?;

    let mut own = QueryScratch::new();
    let ws = scratch.unwrap_or(&mut own);
    ws.prepare_buckets(m);

    // --- Stage 1: shared sample generation + HFS ------------------------
    // Phase timers are read outside the per-sample loop, and counters are
    // plain integer adds that never touch `rng` — telemetry observes the
    // evaluation without perturbing the drawn samples. Governance polls
    // are integer/atomic reads at batch boundaries, neutral the same way.
    let t_sample = ws.sink.timing().then(Instant::now);
    let mut completed = 0usize;
    match policy {
        SeedPolicy::Stream(rng) => {
            let mut sampler = RrSampler::with_scratch(g, model, std::mem::take(&mut ws.sampler));
            let before = sampler.stats();
            let mut charged = before;
            for i in 0..theta {
                if i % CHECK_EVERY == 0 {
                    failpoint::hit(failpoint::Site::SampleBatch, cancel);
                    if let Some(tok) = cancel {
                        let now = sampler.stats();
                        tok.charge_rr_edges(now.delta_since(charged).edges);
                        charged = now;
                        tok.charge_memory(stage1_memory_estimate(&ws.buckets, &ws.hfs));
                        if tok.should_stop() {
                            break;
                        }
                    }
                }
                draw_and_record(
                    &mut sampler,
                    chain,
                    &universe,
                    restricted,
                    m,
                    rng,
                    &mut ws.hfs,
                    &mut ws.buckets,
                    &mut ws.sink,
                    cancel,
                );
                completed += 1;
            }
            let drawn = sampler.stats().delta_since(before);
            ws.sink.add(Counter::RrGraphsSampled, drawn.graphs);
            ws.sink.add(Counter::RrEdgesTraversed, drawn.edges);
            ws.sampler = sampler.into_scratch();
        }
        SeedPolicy::PerIndex { seeds, par } if par.thread_count() <= 1 => {
            let mut sampler = RrSampler::with_scratch(g, model, std::mem::take(&mut ws.sampler));
            let before = sampler.stats();
            let mut charged = before;
            for i in 0..theta {
                if i % CHECK_EVERY == 0 {
                    failpoint::hit(failpoint::Site::SampleBatch, cancel);
                    if let Some(tok) = cancel {
                        let now = sampler.stats();
                        tok.charge_rr_edges(now.delta_since(charged).edges);
                        charged = now;
                        tok.charge_memory(stage1_memory_estimate(&ws.buckets, &ws.hfs));
                        if tok.should_stop() {
                            break;
                        }
                    }
                }
                let mut rng = seeds.rng_for(i as u64);
                draw_and_record(
                    &mut sampler,
                    chain,
                    &universe,
                    restricted,
                    m,
                    &mut rng,
                    &mut ws.hfs,
                    &mut ws.buckets,
                    &mut ws.sink,
                    cancel,
                );
                completed += 1;
            }
            let drawn = sampler.stats().delta_since(before);
            ws.sink.add(Counter::RrGraphsSampled, drawn.graphs);
            ws.sink.add(Counter::RrEdgesTraversed, drawn.edges);
            ws.sampler = sampler.into_scratch();
        }
        SeedPolicy::PerIndex { seeds, par } => {
            // Each worker samples a contiguous index range into its own
            // bucket shard. Which range a sample lands in only decides
            // *where* its counts accumulate; count addition commutes, so
            // the merged buckets are independent of the chunking. Each
            // shard also carries its own counter sink, merged the same way.
            // Workers poll the shared token at the same batch cadence; a
            // fired token stops every shard at its next boundary, and the
            // per-shard completion counts sum to the draws actually made.
            let shards = par_ranges(theta, par.thread_count(), |range| {
                let mut sampler = RrSampler::new(g, model);
                let mut hfs = HfsScratch::new(m);
                let mut sink = TraceSink::new(false);
                let mut buckets: Vec<FxHashMap<NodeId, u32>> = vec![FxHashMap::default(); m];
                let mut charged = sampler.stats();
                let mut done = 0usize;
                for (off, i) in range.enumerate() {
                    if off % CHECK_EVERY == 0 {
                        failpoint::hit(failpoint::Site::SampleBatch, cancel);
                        if let Some(tok) = cancel {
                            let now = sampler.stats();
                            tok.charge_rr_edges(now.delta_since(charged).edges);
                            charged = now;
                            tok.charge_memory(stage1_memory_estimate(&buckets, &hfs));
                            if tok.should_stop() {
                                break;
                            }
                        }
                    }
                    let mut rng = seeds.rng_for(i as u64);
                    draw_and_record(
                        &mut sampler,
                        chain,
                        &universe,
                        restricted,
                        m,
                        &mut rng,
                        &mut hfs,
                        &mut buckets,
                        &mut sink,
                        cancel,
                    );
                    done += 1;
                }
                let drawn = sampler.stats();
                sink.add(Counter::RrGraphsSampled, drawn.graphs);
                sink.add(Counter::RrEdgesTraversed, drawn.edges);
                (buckets, sink, done)
            });
            for (shard, sink, done) in shards {
                for (h, bucket) in shard.into_iter().enumerate() {
                    for (v, c) in bucket {
                        *ws.buckets[h].entry(v).or_insert(0) += c;
                    }
                }
                ws.sink.merge(&sink);
                completed += done;
            }
        }
    }
    if let Some(t0) = t_sample {
        ws.sink
            .add_nanos(Phase::Sample, t0.elapsed().as_nanos() as u64);
    }
    let cancelled = completed < theta;
    if cancelled && completed == 0 {
        // Nothing was drawn: stage 2 over empty buckets would fabricate a
        // rank-1 verdict from zero evidence. Report "no answer" instead.
        let mut out = CodOutcome::empty();
        out.truncated = true;
        out.cancelled = true;
        return Ok(out);
    }

    // --- Stage 2: incremental top-k evaluation --------------------------
    let t_topk = ws.sink.timing().then(Instant::now);
    let mut out = incremental_top_k_with(
        &ws.buckets,
        q,
        k,
        completed,
        universe.len(),
        &mut ws.topk,
        &mut ws.sink,
    );
    if let Some(t0) = t_topk {
        ws.sink
            .add_nanos(Phase::TopK, t0.elapsed().as_nanos() as u64);
    }
    out.truncated = truncated || cancelled;
    out.cancelled = cancelled;
    Ok(out)
}

/// Approximate live bytes of stage-1 state for [`CancelToken`] memory
/// accounting: bucket entries (the part that grows with samples) plus the
/// HFS scratch capacities. Map overhead is folded into a flat per-entry
/// constant — the cap is a guard rail, not an allocator audit.
fn stage1_memory_estimate(buckets: &[FxHashMap<NodeId, u32>], hfs: &HfsScratch) -> usize {
    const BUCKET_ENTRY_BYTES: usize =
        2 * std::mem::size_of::<NodeId>() + std::mem::size_of::<u32>(); // key + count + control byte slack
    let entries: usize = buckets.iter().map(FxHashMap::len).sum();
    let hfs_bytes = hfs.queues.iter().map(Vec::capacity).sum::<usize>()
        * std::mem::size_of::<u32>()
        + hfs.explored.capacity()
        + hfs.level_cache.capacity() * std::mem::size_of::<usize>()
        + hfs.levels.capacity() * std::mem::size_of::<u32>();
    entries * BUCKET_ENTRY_BYTES + hfs_bytes
}

/// The shared per-sample body of stage 1: draw a source, generate its RR
/// graph (restricted to the universe when the chain doesn't span the
/// graph), and fold it into the buckets via HFS. The seed policy only
/// decides which `rng` arrives here.
#[inline]
#[allow(clippy::too_many_arguments)] // private loop body shared by three skeletons
fn draw_and_record<R: Rng>(
    sampler: &mut RrSampler<'_>,
    chain: &impl Chain,
    universe: &[NodeId],
    restricted: bool,
    m: usize,
    rng: &mut R,
    hfs: &mut HfsScratch,
    buckets: &mut [FxHashMap<NodeId, u32>],
    sink: &mut TraceSink,
    cancel: Option<&CancelToken>,
) {
    let s = universe[rng.random_range(0..universe.len())];
    let Some(ls) = chain.level_of(s) else {
        // Source outside every chain community: its induced RR graphs
        // are all empty (Example 3) — nothing to record.
        sink.incr(Counter::HfsNodesPruned);
        return;
    };
    let rr = if restricted {
        sampler.sample_restricted(s, rng, |v| universe.binary_search(&v).is_ok())
    } else {
        sampler.sample_from(s, rng)
    };
    hfs_record(chain, &rr, ls, m, hfs, buckets, sink, cancel);
}

/// [`compressed_cod`] with per-index seed derivation and parallel sample
/// generation: sample `i` draws its source and RR graph entirely from the
/// RNG derived for index `i`, so the outcome is a pure function of
/// `(g, model, chain, q, k, θ, seed)` — bit-identical for every thread
/// count and across repeated runs.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus seed and execution policy
pub fn compressed_cod_seeded(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    seed: u64,
    par: Parallelism,
) -> CodResult<CodOutcome> {
    compressed_cod_budgeted_seeded(g, model, chain, q, k, theta_per_node, None, seed, par)
}

/// [`compressed_cod_budgeted`] with per-index seed derivation and parallel
/// sample generation (see [`compressed_cod_seeded`] for the determinism
/// contract).
#[allow(clippy::too_many_arguments)] // the paper's query signature plus budget and execution policy
pub fn compressed_cod_budgeted_seeded(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    budget: Option<usize>,
    seed: u64,
    par: Parallelism,
) -> CodResult<CodOutcome> {
    compressed_cod_with::<SmallRng>(
        g,
        model,
        chain,
        q,
        k,
        theta_per_node,
        budget,
        SeedPolicy::PerIndex {
            seeds: SeedSequence::new(seed),
            par,
        },
        None,
    )
}

/// Shared argument validation for the evaluation entry points. `Ok(false)`
/// means the chain is empty and the caller should return
/// [`CodOutcome::empty`].
fn validate_chain_query(chain: &impl Chain, q: NodeId, k: usize) -> CodResult<bool> {
    if k == 0 {
        return Err(CodError::InvalidQuery("top-k requires k >= 1".into()));
    }
    if chain.len() == 0 {
        return Ok(false);
    }
    if chain.level_of(q) != Some(0) {
        return Err(CodError::InvalidQuery(format!(
            "query node {q} is not in the chain's deepest community"
        )));
    }
    Ok(true)
}

/// Resolves the effective sample count on the shared-pool path, where the
/// budget caps *new* draws only — samples already resident in the pool are
/// paid for. `pooled` is the pool size before this query grows it.
///
/// With a zero budget the error's `required` figure is the chain-wide
/// `θ·|universe|` net of the pooled samples: exactly the draws this query
/// would still have to make.
pub fn resolve_theta_pooled(
    theta_per_node: usize,
    universe_len: usize,
    budget: Option<usize>,
    pooled: usize,
) -> CodResult<(usize, bool)> {
    let full_theta = theta_per_node.max(1) * universe_len;
    let needed_new = full_theta.saturating_sub(pooled);
    let theta = match budget {
        Some(0) if needed_new > 0 => {
            return Err(CodError::BudgetExhausted {
                budget: 0,
                required: needed_new,
            });
        }
        Some(b) => full_theta.min(pooled.saturating_add(b)),
        None => full_theta,
    };
    Ok((theta, theta < full_theta))
}

/// Resolves the effective sample count under an optional budget.
fn resolve_theta(
    theta_per_node: usize,
    universe_len: usize,
    budget: Option<usize>,
) -> CodResult<(usize, bool)> {
    let full_theta = theta_per_node.max(1) * universe_len;
    let theta = match budget {
        Some(0) => {
            // `required` is the chain-wide draw count `θ·|universe|` the
            // full evaluation would make — not the per-node θ.
            return Err(CodError::BudgetExhausted {
                budget: 0,
                required: full_theta,
            });
        }
        Some(b) => full_theta.min(b),
        None => full_theta,
    };
    Ok((theta, theta < full_theta))
}

/// Hierarchical-first search over one RR graph (stage 1 inner loop of
/// Algorithm 1): every RR node is recorded in the bucket of the deepest
/// chain community within which it is reachable from the source. `ls` is
/// the source's chain level. Leaves `scratch.queues` drained for reuse —
/// including on the cancellation early-exit, which abandons the remaining
/// levels of this one RR graph (the caller flags the outcome best-effort).
#[allow(clippy::too_many_arguments)]
fn hfs_record(
    chain: &impl Chain,
    rr: &RrGraph,
    ls: usize,
    m: usize,
    scratch: &mut HfsScratch,
    buckets: &mut [FxHashMap<NodeId, u32>],
    sink: &mut TraceSink,
    cancel: Option<&CancelToken>,
) {
    let n = rr.len();
    let mut visited = 0u64;
    scratch.explored.clear();
    scratch.explored.resize(n, false);
    scratch.level_cache.clear();
    scratch.level_cache.resize(n, usize::MAX);
    scratch.level_cache[0] = ls;
    scratch.queues[ls].push(0);
    #[allow(clippy::needless_range_loop)] // h indexes both queues and buckets
    for h in ls..m {
        failpoint::hit(failpoint::Site::HfsLevel, cancel);
        if cancel.is_some_and(CancelToken::is_cancelled) {
            for queue in &mut scratch.queues[h..m] {
                queue.clear();
            }
            break;
        }
        while let Some(v) = scratch.queues[h].pop() {
            if scratch.explored[v as usize] {
                continue;
            }
            scratch.explored[v as usize] = true;
            visited += 1;
            *buckets[h].entry(rr.node(v)).or_insert(0) += 1;
            for &u in rr.out_neighbors(v) {
                if scratch.explored[u as usize] {
                    continue;
                }
                let lu = if scratch.level_cache[u as usize] != usize::MAX {
                    scratch.level_cache[u as usize]
                } else {
                    // `m` marks nodes inside the universe but outside
                    // every chain community (possible when the chain
                    // excludes its sampling universe's root): no
                    // within-chain path can pass through them.
                    let l = chain.level_of(rr.node(u)).unwrap_or(m);
                    scratch.level_cache[u as usize] = l;
                    l
                };
                if lu >= m {
                    continue;
                }
                scratch.queues[lu.max(h)].push(u);
            }
        }
    }
    sink.add(Counter::HfsNodesVisited, visited);
    sink.add(Counter::HfsNodesPruned, n as u64 - visited);
}

/// [`hfs_record`] against the dense `node → level` table in
/// `scratch.levels` instead of live `Chain::level_of` queries. The pooled
/// fold touches every RR graph of a prebuilt pool back to back, so it
/// amortizes one `level_of` sweep over the universe (building the table)
/// across all `Θ` folds — the LCA lookups that dominate a warm fold
/// collapse to array reads. Bucket updates and traversal order are
/// identical to [`hfs_record`], so the outcome is bit-identical; only the
/// lookup path differs.
fn hfs_record_dense(
    rr: &RrGraph,
    ls: usize,
    m: usize,
    scratch: &mut HfsScratch,
    buckets: &mut [FxHashMap<NodeId, u32>],
    sink: &mut TraceSink,
    cancel: Option<&CancelToken>,
) {
    let n = rr.len();
    let mut visited = 0u64;
    scratch.explored.clear();
    scratch.explored.resize(n, false);
    scratch.queues[ls].push(0);
    #[allow(clippy::needless_range_loop)] // h indexes both queues and buckets
    for h in ls..m {
        failpoint::hit(failpoint::Site::HfsLevel, cancel);
        if cancel.is_some_and(CancelToken::is_cancelled) {
            for queue in &mut scratch.queues[h..m] {
                queue.clear();
            }
            break;
        }
        while let Some(v) = scratch.queues[h].pop() {
            if scratch.explored[v as usize] {
                continue;
            }
            scratch.explored[v as usize] = true;
            visited += 1;
            *buckets[h].entry(rr.node(v)).or_insert(0) += 1;
            for &u in rr.out_neighbors(v) {
                if u == 0 || scratch.explored[u as usize] {
                    continue;
                }
                let lu = scratch
                    .levels
                    .get(rr.node(u) as usize)
                    .copied()
                    .unwrap_or(u32::MAX) as usize;
                if lu >= m {
                    continue;
                }
                scratch.queues[lu.max(h)].push(u);
            }
        }
    }
    sink.add(Counter::HfsNodesVisited, visited);
    sink.add(Counter::HfsNodesPruned, n as u64 - visited);
}

/// Stage 2 of Algorithm 1, exposed for direct use and testing: scans
/// buckets from the deepest community upward maintaining the tie-inclusive
/// top-k pool justified by Theorem 3.
///
/// `buckets[h]` maps nodes to the number of RR graphs in which HFS first
/// reached them at level `h`; `theta` and `universe_len` only scale the
/// reported `sigma_q` values.
pub fn incremental_top_k(
    buckets: &[FxHashMap<NodeId, u32>],
    q: NodeId,
    k: usize,
    theta: usize,
    universe_len: usize,
) -> CodOutcome {
    incremental_top_k_with(
        buckets,
        q,
        k,
        theta,
        universe_len,
        &mut TopKScratch::default(),
        &mut TraceSink::default(),
    )
}

/// [`incremental_top_k`] with a reusable scratch workspace (the τ map and
/// the pool/candidate/τ-sort vectors). The scan is iteration-order
/// independent — counts fold through commutative addition and candidates
/// are sorted before use — so recycled map capacity cannot change the
/// outcome.
pub(crate) fn incremental_top_k_with(
    buckets: &[FxHashMap<NodeId, u32>],
    q: NodeId,
    k: usize,
    theta: usize,
    universe_len: usize,
    t: &mut TopKScratch,
    sink: &mut TraceSink,
) -> CodOutcome {
    assert!(k >= 1, "top-k requires k >= 1");
    t.prepare();
    let TopKScratch {
        tau,
        pool,
        candidates,
        taus,
    } = t;
    let m = buckets.len();
    // Pool: every node whose τ ties-or-beats the k-th highest seen so far.
    // Theorem 3 guarantees nodes outside (pool ∪ bucket) cannot enter the
    // top-k at the next level.
    let mut best_level = None;
    let mut ranks = Vec::with_capacity(m);
    let mut sigma_q = Vec::with_capacity(m);
    let mut uncertain = Vec::with_capacity(m);

    #[allow(clippy::needless_range_loop)] // h indexes three parallel per-level structures
    for h in 0..m {
        for (&v, &c) in &buckets[h] {
            *tau.entry(v).or_insert(0) += c;
        }
        candidates.clear();
        candidates.extend(pool.iter().copied());
        candidates.extend(buckets[h].keys().copied());
        candidates.sort_unstable();
        candidates.dedup();
        // The |pool ∪ bucket| candidate evaluations Theorem 3 bounds.
        sink.add(Counter::TopKHeapOps, candidates.len() as u64);

        // k-th highest τ among candidates (0 if fewer than k candidates).
        taus.clear();
        taus.extend(candidates.iter().map(|&v| tau[&v]));
        taus.sort_unstable_by(|a, b| b.cmp(a));
        let t_k = if taus.len() >= k { taus[k - 1] } else { 0 };
        pool.clear();
        pool.extend(
            candidates
                .iter()
                .copied()
                .filter(|&v| tau[&v] >= t_k.max(1)),
        );

        let tq = tau.get(&q).copied().unwrap_or(0);
        let higher = candidates.iter().filter(|&&v| tau[&v] > tq).count();
        let rank = higher + 1;
        // Uncertainty: would an adversarial ±z·√(τ(v)+τ(q)) count
        // perturbation flip the top-k verdict? (z ≈ 2, two-sided ~95%.)
        let margin = |tv: u32| 2.0 * ((tv + tq + 1) as f64).sqrt();
        let higher_lo = candidates
            .iter()
            .filter(|&&v| v != q && tau[&v] as f64 > tq as f64 + margin(tau[&v]))
            .count();
        let higher_hi = candidates
            .iter()
            .filter(|&&v| v != q && tau[&v] as f64 > tq as f64 - margin(tau[&v]))
            .count();
        uncertain.push((higher_lo < k) != (higher_hi < k));
        ranks.push(rank);
        sigma_q.push(tq as f64 / theta as f64 * universe_len as f64);
        if rank <= k {
            best_level = Some(h);
        }
    }

    CodOutcome {
        best_level,
        ranks,
        sigma_q,
        uncertain,
        theta,
        truncated: false,
        cancelled: false,
    }
}

/// Adaptive-θ compressed COD evaluation, in the spirit of the
/// sample-sizing loops of the RR-set IM literature the paper builds on
/// (\[21–24\]): start from `θ_0` RR graphs per node and double until no
/// level's top-k verdict is *uncertain* (flippable by a ±2σ count
/// perturbation; see [`CodOutcome::uncertain`]) or `θ_max` is reached.
///
/// Queries with a clear influence gap stop at `θ_0`; borderline queries —
/// exactly the ones the paper's Fig. 8 shows suffering false exclusions —
/// automatically get more samples. Returns the final outcome, whose
/// `theta` field reports the total samples actually drawn in the last
/// round.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus the (θ_0, θ_max) budget
pub fn compressed_cod_adaptive<R: Rng>(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_start: usize,
    theta_max: usize,
    rng: &mut R,
) -> CodResult<CodOutcome> {
    let mut theta = theta_start.max(1);
    loop {
        let out = compressed_cod(g, model, chain, q, k, theta, rng)?;
        let settled = !out.uncertain.iter().any(|&u| u);
        if settled || theta * 2 > theta_max {
            return Ok(out);
        }
        theta *= 2;
    }
}

/// [`compressed_cod_adaptive`] with per-index seed derivation and parallel
/// sample generation. Each doubling round draws its samples from an
/// independent child seed sequence, so the escalation path — and therefore
/// the final outcome — is a pure function of `(inputs, seed)`, identical
/// for every thread count.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus the (θ_0, θ_max) budget and policy
pub fn compressed_cod_adaptive_seeded(
    g: &Csr,
    model: Model,
    chain: &(impl Chain + Sync),
    q: NodeId,
    k: usize,
    theta_start: usize,
    theta_max: usize,
    seed: u64,
    par: Parallelism,
) -> CodResult<CodOutcome> {
    let seq = SeedSequence::new(seed);
    let mut theta = theta_start.max(1);
    let mut round = 0u64;
    loop {
        let out =
            compressed_cod_seeded(g, model, chain, q, k, theta, seq.child(round).master(), par)?;
        let settled = !out.uncertain.iter().any(|&u| u);
        if settled || theta * 2 > theta_max {
            return Ok(out);
        }
        theta *= 2;
        round += 1;
    }
}

/// Compressed COD evaluation over a shared RR pool (the cross-query cache
/// of [`crate::pool`]): stage 1 *folds* pooled RR graphs through HFS
/// instead of sampling, growing the pool first if it holds fewer than the
/// resolved `Θ` samples. The sample budget charges only the *new* draws —
/// pooled samples are already paid for ([`resolve_theta_pooled`]).
///
/// Because pool samples are derived from the cache key (not a caller RNG),
/// the outcome is a pure function of `(g, model, chain, q, k, θ, budget)`
/// for a given key — identical whether the pool was warm, cold, or grown
/// in several top-ups, at every thread count. It intentionally differs
/// from the unpooled paths' outcomes bit-wise (their RNG streams skip
/// graph generation for out-of-chain sources; a shared pool cannot), which
/// is why pooling is opt-in per engine.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus budget, pool, workspace, token
pub fn compressed_cod_pooled(
    g: &Csr,
    model: Model,
    chain: &impl Chain,
    q: NodeId,
    k: usize,
    theta_per_node: usize,
    budget: Option<usize>,
    pool: &RrPoolEntry,
    par: Parallelism,
    scratch: Option<&mut QueryScratch>,
    cancel: Option<&CancelToken>,
) -> CodResult<CodOutcome> {
    if !validate_chain_query(chain, q, k)? {
        return Ok(CodOutcome::empty());
    }
    let universe = chain.universe();
    debug_assert_eq!(
        pool.universe(),
        &universe[..],
        "pool key does not match the chain's universe"
    );
    let (theta, truncated) =
        resolve_theta_pooled(theta_per_node, universe.len(), budget, pool.len())?;
    let mut own = QueryScratch::new();
    let ws = scratch.unwrap_or(&mut own);
    let (view, grown) = pool.ensure(g, model, theta, par, cancel);
    ws.sink.add(Counter::RrGraphsSampled, grown.graphs);
    ws.sink.add(Counter::RrEdgesTraversed, grown.edges);
    if grown.topped_up {
        ws.sink.incr(Counter::PoolTopups);
    }
    pooled_fold(chain, q, k, theta, truncated, &universe, &view, ws, cancel)
}

/// Stage 1 over an already-sampled pool view plus stage 2: the pooled
/// counterpart of [`compressed_cod_governed`]'s loop, minus the sampling.
/// Folds `min(theta, view.len())` graphs; fewer than `theta` (a growth
/// cancelled mid-way, or a fold stopped at a batch boundary) flags the
/// outcome cancelled and best-effort, mirroring the sampling path.
#[allow(clippy::too_many_arguments)] // private driver shared by the fixed-θ and adaptive paths
fn pooled_fold(
    chain: &impl Chain,
    q: NodeId,
    k: usize,
    theta: usize,
    truncated: bool,
    universe: &[NodeId],
    view: &PoolView,
    ws: &mut QueryScratch,
    cancel: Option<&CancelToken>,
) -> CodResult<CodOutcome> {
    let m = chain.len();
    let universe_len = universe.len();
    ws.prepare_buckets(m);
    // One `level_of` sweep over the universe builds the dense table every
    // fold reads; pool samples never leave the universe, so `u32::MAX`
    // padding only marks genuinely prunable nodes.
    let bound = universe.last().map_or(0, |&v| v as usize + 1);
    ws.hfs.levels.clear();
    ws.hfs.levels.resize(bound, u32::MAX);
    for &v in universe {
        if let Some(l) = chain.level_of(v) {
            ws.hfs.levels[v as usize] = l as u32;
        }
    }
    let t_sample = ws.sink.timing().then(Instant::now);
    let take = theta.min(view.len());
    let mut completed = 0usize;
    for (i, rr) in view.iter().take(take).enumerate() {
        if i % CHECK_EVERY == 0 {
            failpoint::hit(failpoint::Site::PoolFold, cancel);
            if let Some(tok) = cancel {
                tok.charge_memory(stage1_memory_estimate(&ws.buckets, &ws.hfs));
                if tok.should_stop() {
                    break;
                }
            }
        }
        let ls = ws
            .hfs
            .levels
            .get(rr.source() as usize)
            .copied()
            .unwrap_or(u32::MAX) as usize;
        if ls >= m {
            // Source outside every chain community: the induced RR graph
            // is empty (Example 3) — nothing to record, but the sample
            // still counts toward Θ, exactly like the sampling path.
            ws.sink.incr(Counter::HfsNodesPruned);
        } else {
            hfs_record_dense(
                rr,
                ls,
                m,
                &mut ws.hfs,
                &mut ws.buckets,
                &mut ws.sink,
                cancel,
            );
        }
        completed += 1;
    }
    if let Some(t0) = t_sample {
        ws.sink
            .add_nanos(Phase::Sample, t0.elapsed().as_nanos() as u64);
    }
    let cancelled = completed < theta;
    if cancelled && completed == 0 {
        let mut out = CodOutcome::empty();
        out.truncated = true;
        out.cancelled = true;
        return Ok(out);
    }
    let t_topk = ws.sink.timing().then(Instant::now);
    let mut out = incremental_top_k_with(
        &ws.buckets,
        q,
        k,
        completed,
        universe_len,
        &mut ws.topk,
        &mut ws.sink,
    );
    if let Some(t0) = t_topk {
        ws.sink
            .add_nanos(Phase::TopK, t0.elapsed().as_nanos() as u64);
    }
    out.truncated = truncated || cancelled;
    out.cancelled = cancelled;
    Ok(out)
}

/// How an adaptive pooled evaluation escalated and where it stopped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveReport {
    /// Doubling rounds executed (≥ 1).
    pub rounds: usize,
    /// Total samples folded in the final round.
    pub theta: usize,
    /// The requested half-width bound, on the normalized influence scale
    /// `p̂ = τ_q/Θ ∈ [0, 1]`.
    pub epsilon: f64,
    /// The achieved confidence half-width at the final round, read at the
    /// answer's level ([`influence_half_width`]).
    pub half_width: f64,
    /// The loop stopped because the bound was met (every level's top-k
    /// verdict stable *and* `half_width ≤ epsilon`), not because it ran
    /// into `θ_max` or a cancellation.
    pub converged: bool,
}

/// Confidence half-width of a normalized influence estimate `p̂ = τ_q/Θ`
/// from `theta` Bernoulli trials, at confidence `1 − delta`: the tighter
/// of the empirical-Bernstein bound
/// `√(2·p̂(1−p̂)·ln(3/δ)/Θ) + 3·ln(3/δ)/Θ` (sharp when `p̂` is small, the
/// common case for influence fractions) and the distribution-free
/// Hoeffding bound `√(ln(2/δ)/(2Θ))`. With probability at least `1 − δ`,
/// `|p̂ − p| ≤` this value.
pub fn influence_half_width(p_hat: f64, theta: usize, delta: f64) -> f64 {
    if theta == 0 {
        return f64::INFINITY;
    }
    let n = theta as f64;
    let p = p_hat.clamp(0.0, 1.0);
    let l3 = (3.0 / delta).ln();
    let bernstein = (2.0 * p * (1.0 - p) * l3 / n).sqrt() + 3.0 * l3 / n;
    let hoeffding = ((2.0 / delta).ln() / (2.0 * n)).sqrt();
    bernstein.min(hoeffding)
}

/// The half-width governing the adaptive stop, read at the level the
/// answer comes from (the characteristic community if one was found, else
/// the deepest level). Empty outcomes are exact by definition.
fn outcome_half_width(out: &CodOutcome, universe_len: usize, delta: f64) -> f64 {
    if out.sigma_q.is_empty() || out.theta == 0 || universe_len == 0 {
        return 0.0;
    }
    let h = out.best_level.unwrap_or(0);
    // sigma_q = p̂·|universe|, so dividing recovers the [0,1] estimate.
    influence_half_width(out.sigma_q[h] / universe_len as f64, out.theta, delta)
}

/// Confidence-bound adaptive evaluation over a shared pool: grow the pool
/// in doubling rounds `θ_0, 2θ_0, …` and stop as soon as **(a)** no
/// level's top-k verdict is flippable by sampling noise
/// ([`CodOutcome::uncertain`]) **and (b)** the confidence half-width on
/// the query's influence estimate is within `epsilon` at confidence
/// `1 − delta` ([`influence_half_width`]) — instead of running a fixed
/// `θ`. Rounds are *prefixes of the same pool*: round `r` re-folds the
/// samples round `r−1` folded plus the top-up, so escalation never
/// resamples and later queries inherit the grown pool.
///
/// Returns the final outcome plus an [`AdaptiveReport`] describing the
/// escalation. The statistical-equivalence harness in
/// `tests/pool_adaptive.rs` checks the reported bound against a 4×
/// fixed-θ reference across a query grid.
#[allow(clippy::too_many_arguments)] // the paper's query signature plus (θ_0, θ_max, ε, δ) and the pool
pub fn compressed_cod_adaptive_pooled(
    g: &Csr,
    model: Model,
    chain: &impl Chain,
    q: NodeId,
    k: usize,
    theta_start: usize,
    theta_max: usize,
    epsilon: f64,
    delta: f64,
    pool: &RrPoolEntry,
    par: Parallelism,
    scratch: Option<&mut QueryScratch>,
    cancel: Option<&CancelToken>,
) -> CodResult<(CodOutcome, AdaptiveReport)> {
    let mut own = QueryScratch::new();
    let ws = scratch.unwrap_or(&mut own);
    let universe_len = chain.universe().len();
    let mut theta_pn = theta_start.max(1);
    let theta_max_pn = theta_max.max(theta_pn);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let out = compressed_cod_pooled(
            g,
            model,
            chain,
            q,
            k,
            theta_pn,
            None,
            pool,
            par,
            Some(ws),
            cancel,
        )?;
        let half_width = outcome_half_width(&out, universe_len, delta);
        let settled = !out.uncertain.iter().any(|&u| u) && half_width <= epsilon;
        if settled || theta_pn * 2 > theta_max_pn || out.cancelled {
            let report = AdaptiveReport {
                rounds,
                theta: out.theta,
                epsilon,
                half_width,
                converged: settled,
            };
            return Ok((out, report));
        }
        theta_pn *= 2;
    }
}

/// The paper's literal heap-based incremental top-k (Algorithm 1, lines
/// 16–27), kept alongside [`incremental_top_k`] for fidelity testing.
///
/// Maintains a size-k min-heap `H` of accumulated counts; a node enters
/// only when its updated count strictly beats the heap minimum (line 22).
/// Under ties this can drop a node that the strictly-greater rank
/// definition would keep, so [`incremental_top_k`]'s tie-inclusive pool is
/// the default; on tie-free inputs both produce identical verdicts (see
/// the equivalence tests).
pub fn incremental_top_k_heap(
    buckets: &[FxHashMap<NodeId, u32>],
    q: NodeId,
    k: usize,
    theta: usize,
    universe_len: usize,
) -> CodOutcome {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert!(k >= 1);
    let m = buckets.len();
    let mut tau: FxHashMap<NodeId, u32> = FxHashMap::default();
    // Min-heap over (count, Reverse(node)) so ties pop the larger id first
    // (deterministic). Entries may be stale; validity is checked on pop.
    let mut heap: BinaryHeap<Reverse<(u32, Reverse<NodeId>)>> = BinaryHeap::new();
    let mut in_heap: FxHashSet<NodeId> = FxHashSet::default();
    let mut best_level = None;
    let mut ranks = Vec::with_capacity(m);
    let mut sigma_q = Vec::with_capacity(m);

    let mut entries: Vec<(NodeId, u32)> = Vec::new();
    for (h, bucket) in buckets.iter().enumerate() {
        // Heap admission under ties depends on processing order, and map
        // iteration order is insertion-history-dependent — iterate the
        // bucket in sorted node order so tie-breaks are reproducible.
        entries.clear();
        entries.extend(bucket.iter().map(|(&v, &c)| (v, c)));
        entries.sort_unstable_by_key(|&(v, _)| v);
        for &(v, c) in &entries {
            let t = tau.entry(v).or_insert(0);
            *t += c; // line 20: B_h(v) += τ(v); line 21: τ(v) = B_h(v)
            let tv = *t;
            // Line 22: enter H if beating the current minimum (or H has
            // room); membership updates are handled lazily via stale
            // entries.
            // Clear stale prefix first so peek() reflects a real member.
            while let Some(&Reverse((c0, Reverse(v0)))) = heap.peek() {
                if tau.get(&v0).copied().unwrap_or(0) != c0 || !in_heap.contains(&v0) {
                    heap.pop();
                } else {
                    break;
                }
            }
            let beats = in_heap.len() < k || heap.peek().is_some_and(|Reverse((c0, _))| *c0 < tv);
            if beats || in_heap.contains(&v) {
                heap.push(Reverse((tv, Reverse(v))));
                in_heap.insert(v);
                // Shrink membership past k, skipping stale entries.
                while in_heap.len() > k {
                    let Some(&Reverse((c0, Reverse(v0)))) = heap.peek() else {
                        unreachable!("heap holds an entry per in_heap member");
                    };
                    if tau.get(&v0).copied().unwrap_or(0) != c0 || !in_heap.contains(&v0) {
                        heap.pop(); // stale duplicate
                        continue;
                    }
                    heap.pop();
                    in_heap.remove(&v0);
                }
            }
        }
        // Drop stale heap prefix so the membership test is meaningful.
        while let Some(&Reverse((c0, Reverse(v0)))) = heap.peek() {
            if tau.get(&v0).copied().unwrap_or(0) != c0 || !in_heap.contains(&v0) {
                heap.pop();
            } else {
                break;
            }
        }
        let tq = tau.get(&q).copied().unwrap_or(0);
        let rank_est = if in_heap.contains(&q) {
            // Exact small-k rank among heap members.
            let higher = in_heap
                .iter()
                .filter(|&&v| tau.get(&v).copied().unwrap_or(0) > tq)
                .count();
            higher + 1
        } else {
            k + 1 // not in the top-k structure
        };
        ranks.push(rank_est);
        sigma_q.push(tq as f64 / theta as f64 * universe_len as f64);
        if in_heap.contains(&q) {
            best_level = Some(h); // lines 26–27
        }
    }
    let m_levels = ranks.len();
    CodOutcome {
        best_level,
        ranks,
        sigma_q,
        uncertain: vec![false; m_levels],
        theta,
        truncated: false,
        cancelled: false,
    }
}

use cod_graph::FxHashSet;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::DendroChain;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{cluster_unweighted, Dendrogram, LcaIndex, Linkage};

    /// Two stars joined by a bridge: node 0 is the hub of a 5-star
    /// {0..5}, node 6 the hub of a 3-star {6..9}; bridge 5-6.
    fn two_stars() -> Csr {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        for v in 7..10 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        b.build()
    }

    #[test]
    fn hub_is_top_1_in_the_whole_graph() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = compressed_cod(&g, Model::WeightedCascade, &chain, 0, 1, 200, &mut rng).unwrap();
        // Node 0 dominates its star and the whole graph: the characteristic
        // community should be the top of the chain (or near it).
        let best = out.best_level.expect("hub must be top-1 somewhere");
        assert_eq!(best, chain.len() - 1, "hub should win even at the root");
    }

    #[test]
    fn leaf_is_not_top_1_at_the_root() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 9).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let out = compressed_cod(&g, Model::WeightedCascade, &chain, 9, 1, 400, &mut rng).unwrap();
        assert!(
            *out.ranks.last().unwrap() > 1,
            "a periphery leaf cannot be top-1 globally"
        );
    }

    #[test]
    fn rank_one_at_every_level_for_dominant_node() {
        // A path graph where node 0... actually use the star: its hub is
        // rank 1 at every level of its chain.
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(6, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let out = compressed_cod(&g, Model::WeightedCascade, &chain, 0, 1, 300, &mut rng).unwrap();
        for (h, &r) in out.ranks.iter().enumerate() {
            assert_eq!(r, 1, "hub must rank 1 at level {h}");
        }
        assert_eq!(out.best_level, Some(chain.len() - 1));
    }

    #[test]
    fn sigma_estimates_grow_with_community_size() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let out = compressed_cod(&g, Model::WeightedCascade, &chain, 0, 1, 500, &mut rng).unwrap();
        // σ is monotone along the chain for a fixed node (more reachable
        // sources in larger communities).
        for w in out.sigma_q.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "sigma must not shrink: {:?}",
                out.sigma_q
            );
        }
        // At the top, σ̂ should be near the Monte-Carlo influence of 0.
        let mut mc_rng = SmallRng::seed_from_u64(5);
        let truth = cod_influence::montecarlo::influence(
            &g,
            Model::WeightedCascade,
            0,
            4000,
            &mut mc_rng,
            |_| true,
        );
        let est = *out.sigma_q.last().unwrap();
        assert!(
            (est - truth).abs() < 0.5,
            "sigma estimate {est} vs monte carlo {truth}"
        );
    }

    #[test]
    fn adaptive_stops_early_on_clear_gaps() {
        // Star hub: its rank-1 verdicts have huge margins, so adaptive
        // evaluation must settle at the starting θ.
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(6, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(41);
        let out = compressed_cod_adaptive(
            &g,
            Model::WeightedCascade,
            &chain,
            0,
            1,
            200,
            3200,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.theta, 200 * 6, "no escalation needed");
        assert_eq!(out.best_level, Some(chain.len() - 1));
    }

    #[test]
    fn adaptive_escalates_on_borderline_ranks() {
        // Symmetric pair {0,1} plus a tail: 0 and 1 tie exactly, so the
        // top-1 verdict is uncertain at tiny θ and the sampler escalates.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        let g = b.build();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(4, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let out =
            compressed_cod_adaptive(&g, Model::WeightedCascade, &chain, 0, 1, 2, 256, &mut rng)
                .unwrap();
        assert!(
            out.theta > 2 * 4,
            "ties must trigger escalation (theta {})",
            out.theta
        );
    }

    #[test]
    fn uncertainty_flags_align_with_margins() {
        // Clear-cut counts: no uncertainty. Borderline counts: flagged.
        let mut clear = FxHashMap::default();
        clear.insert(0u32, 1000u32);
        clear.insert(1, 10);
        let out = incremental_top_k(&[clear], 0, 1, 1010, 2);
        assert!(!out.uncertain[0]);
        let mut tight = FxHashMap::default();
        tight.insert(0u32, 100u32);
        tight.insert(1, 101);
        let out = incremental_top_k(&[tight], 0, 1, 201, 2);
        assert!(out.uncertain[0], "one-count gap must be uncertain");
    }

    #[test]
    fn heap_variant_matches_pool_variant_without_ties() {
        // On tie-free counts the paper's heap loop and the tie-inclusive
        // pool must agree on every per-level verdict.
        let mut rng = SmallRng::seed_from_u64(7);
        for trial in 0..40 {
            let levels = 1 + trial % 6;
            let k = 1 + trial % 4;
            let universe = 25u32;
            let mut buckets: Vec<FxHashMap<NodeId, u32>> = Vec::new();
            for _ in 0..levels {
                let mut m = FxHashMap::default();
                for v in 0..universe {
                    if rng.random_bool(0.5) {
                        // Large random counts make ties measure-zero.
                        m.insert(v, rng.random_range(1..1_000_000u32));
                    }
                }
                buckets.push(m);
            }
            let q = rng.random_range(0..universe);
            let a = incremental_top_k(&buckets, q, k, 100, universe as usize);
            let b = incremental_top_k_heap(&buckets, q, k, 100, universe as usize);
            assert_eq!(a.best_level, b.best_level, "trial {trial}");
            for h in 0..levels {
                assert_eq!(
                    a.ranks[h] <= k,
                    b.ranks[h] <= k,
                    "trial {trial} level {h}: {} vs {}",
                    a.ranks[h],
                    b.ranks[h]
                );
                assert_eq!(a.sigma_q[h], b.sigma_q[h]);
            }
        }
    }

    #[test]
    fn heap_variant_on_paper_example_4() {
        // Example 4's bucket contents (Fig. 3(b)): B_0, B_3, B_4 for query
        // v_0 and k = 2.
        let mut b0 = FxHashMap::default();
        for (v, c) in [(0u32, 2u32), (1, 2), (2, 1), (3, 1)] {
            b0.insert(v, c);
        }
        let mut b3 = FxHashMap::default();
        for (v, c) in [(6u32, 3u32), (7, 3), (3, 1)] {
            b3.insert(v, c);
        }
        let mut b4 = FxHashMap::default();
        for (v, c) in [(4u32, 2u32), (5, 2), (2, 1), (0, 1), (3, 1), (6, 1)] {
            b4.insert(v, c);
        }
        let buckets = vec![b0, b3, b4];
        let out = incremental_top_k(&buckets, 0, 2, 40, 10);
        // v_0 is top-2 in B_0 (count 2) and again after B_4 (count 3,
        // tying v_6's 4? — v_6 has 3 + 1 = 4 ... Example 4 reports the
        // final top-2 as {(v_6, .), (v_0, .)}; v_0 must be top-2 at levels
        // 0 and 2 but not 1.
        assert!(out.ranks[0] <= 2, "{:?}", out.ranks);
        assert!(out.ranks[1] > 2, "{:?}", out.ranks);
        assert!(out.ranks[2] <= 2, "{:?}", out.ranks);
        assert_eq!(out.best_level, Some(2));
    }

    #[test]
    fn zero_k_is_rejected_not_panicking() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let err =
            compressed_cod(&g, Model::WeightedCascade, &chain, 0, 0, 10, &mut rng).unwrap_err();
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
    }

    #[test]
    fn budget_truncates_and_flags() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        // θ=100 per node would mean 1000 samples; a budget of 40 truncates.
        let out = compressed_cod_budgeted(
            &g,
            Model::WeightedCascade,
            &chain,
            0,
            1,
            100,
            Some(40),
            &mut rng,
        )
        .unwrap();
        assert!(out.truncated);
        assert_eq!(out.theta, 40);
        // A generous budget leaves the evaluation untouched.
        let out = compressed_cod_budgeted(
            &g,
            Model::WeightedCascade,
            &chain,
            0,
            1,
            100,
            Some(1_000_000),
            &mut rng,
        )
        .unwrap();
        assert!(!out.truncated);
        assert_eq!(out.theta, 1000);
    }

    #[test]
    fn zero_budget_is_exhausted() {
        let g = two_stars();
        let merges = cluster_unweighted(&g, Linkage::Average);
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(10);
        let err = compressed_cod_budgeted(
            &g,
            Model::WeightedCascade,
            &chain,
            0,
            1,
            100,
            Some(0),
            &mut rng,
        )
        .unwrap_err();
        assert!(
            matches!(err, CodError::BudgetExhausted { budget: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_chain_yields_no_community() {
        let g = GraphBuilder::new(1).build();
        let d = Dendrogram::singleton();
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let out = compressed_cod(&g, Model::WeightedCascade, &chain, 0, 1, 10, &mut rng).unwrap();
        assert!(out.best_level.is_none());
        assert!(out.ranks.is_empty());
    }
}
