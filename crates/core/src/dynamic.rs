//! COD over evolving graphs (the paper's §IV-B / §VI future-work
//! direction).
//!
//! The paper observes that "updates to graphs have an impact on the
//! structure of hierarchical communities and the process of influence
//! propagation" and that the compressed hierarchy computation "cannot be
//! updated efficiently". [`DynamicCod`] implements an incremental
//! mutation pipeline on top of that observation:
//!
//! * **mutations are O(1)** — edge edits land in a [`DeltaCsr`] overlay
//!   over the last materialized CSR, attribute edits in the attribute
//!   table; nothing is re-sorted or re-hashed per event;
//! * **invalidation is scoped** — each mutation carries a [`Footprint`]
//!   and only evicts the pooled RR graphs it can actually stale (an
//!   attribute edit leaves disjoint attributes' pools resident; an edge
//!   edit keeps restricted pools whose universe avoids both endpoints);
//! * **the hierarchy is repaired, not rebuilt** — on flush, seeded
//!   configurations re-run linkage only along the leaf-to-root paths of
//!   touched nodes ([`repair_merges`]) and patch the HIMOR index by
//!   redrawing only the RR samples whose node sets intersect the
//!   footprint ([`crate::himor::HimorPatchState::patch`]); a full rebuild happens only
//!   when the edit volume crosses `rebuild_threshold` or the node range
//!   grows;
//! * **replay is deterministic** — every applied mutation is appended to
//!   a [`MutationLog`]; the HIMOR seed is pinned at construction, so the
//!   repaired index is bit-identical to a from-scratch build of the
//!   mutated graph with the same seed, at any thread count.
//!
//! Serial (unseeded) configurations keep the legacy behaviour: edits
//! accumulate against the cached hierarchy, queries run over the slightly
//! stale chain with fresh influence sampling, and the rebuild threshold
//! drops the cache wholesale — there is no per-sample seed to patch from.

use cod_graph::{AttrId, AttrInterner, AttrTable, AttributedGraph, DeltaCsr, FxHashSet, NodeId};
use cod_hierarchy::{match_vertices, repair_merges, Dendrogram, LcaIndex, RepairOutcome};
use cod_influence::CancelToken;
use rand::prelude::*;

use crate::chain::{ComposedChain, DendroChain, SubgraphChain};
use crate::error::{CodError, CodResult};
use crate::failpoint::{self, Site};
use crate::himor::HimorIndex;
use crate::lore::select_recluster_community;
use crate::mutation::{Footprint, Mutation, MutationKind, MutationLog};
use crate::pipeline::{
    answer_from_chain, answer_from_chain_pooled, AnswerSource, CodAnswer, CodConfig,
};
use crate::pool::{PoolCache, PoolCacheStats};
use crate::recluster::{build_hierarchy, local_recluster};
use crate::telemetry::{MetricsRegistry, MetricsSnapshot};

/// How a [`DynamicCod::flush`] brought the cached artifacts current.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Nothing was pending; the cache already reflected every mutation.
    Noop,
    /// Only the attribute table (or a net-zero edge churn) changed: the
    /// graph was rematerialized, the hierarchy and index were kept.
    Refreshed,
    /// The dendrogram was spliced locally and the HIMOR index patched.
    Repaired {
        /// Whether the localized splice survived verification (false
        /// means verification fell back to recomputed merges).
        spliced: bool,
        /// RR samples whose node sets touched the footprint and were
        /// redrawn on the new topology.
        samples_redrawn: u64,
        /// Total retained samples (`Θ`), the redraw denominator.
        samples_total: u64,
    },
    /// The hierarchy and index were rebuilt from scratch.
    Rebuilt,
}

/// Result of a [`DynamicCod::flush`]: what happened and how many pending
/// mutation events it absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationFlushReport {
    /// How the cached artifacts were brought current.
    pub outcome: FlushOutcome,
    /// Mutation events applied since the previous flush (or rebuild).
    pub events: usize,
}

/// A COD engine over a mutable attributed graph.
pub struct DynamicCod {
    /// Current topology: the last materialized CSR plus a mutable overlay
    /// of inserted/removed edges (and overlay-grown nodes).
    topo: DeltaCsr,
    attrs: Vec<Vec<AttrId>>,
    interner: AttrInterner,
    cfg: CodConfig,
    /// Fraction of `|E|` worth of edits that triggers a full rebuild.
    rebuild_threshold: f64,
    cache: Option<Cache>,
    edits_since_build: usize,
    /// Nodes touched by edits since the last rebuild/repair.
    dirty: FxHashSet<NodeId>,
    /// Shared RR-pool cache for [`CodConfig::pool`] queries. Evicted per
    /// mutation through the event's [`Footprint`]: pools provably
    /// untouched by the mutation stay resident.
    pool: PoolCache,
    /// Pinned HIMOR seed (seeded configurations): rebuilds and patches
    /// both derive per-sample RNGs from it, so a repaired index is
    /// bit-identical to a from-scratch build of the mutated graph.
    himor_seed: u64,
    /// Every applied mutation, in order — persistable via
    /// [`MutationLog::save`] and replayable with [`DynamicCod::apply`].
    log: MutationLog,
    metrics: MetricsRegistry,
    /// Run the splice-vs-recluster cross-check on every repair (default
    /// true; turn off to benchmark the splice alone).
    verify_repairs: bool,
    /// Events applied since the last flush (the next report's `events`).
    unflushed: usize,
}

struct Cache {
    graph: AttributedGraph,
    dendro: Dendrogram,
    lca: LcaIndex,
    index: HimorIndex,
    /// Retained seeded-build state that makes `index` patchable across a
    /// dendrogram repair (`None` for serial builds).
    patch: Option<crate::himor::HimorPatchState>,
    /// Graph edits newer than `graph` (CSR/attrs need refresh before
    /// queries).
    csr_stale: bool,
}

impl DynamicCod {
    /// Starts from an existing attributed graph, drawing the pinned HIMOR
    /// seed (seeded configurations) or the build stream (serial) from
    /// `rng`.
    pub fn new<R: Rng>(g: &AttributedGraph, cfg: CodConfig, rng: &mut R) -> Self {
        if cfg.parallelism.is_seeded() {
            Self::with_seed(g, cfg, rng.next_u64())
        } else {
            let mut me = Self::shell(g, cfg, 0);
            me.rebuild_stream(rng);
            me
        }
    }

    /// Starts from an existing attributed graph with an explicit HIMOR
    /// seed. Two instances built with the same seed and fed the same
    /// mutation log answer every query identically — regardless of how
    /// many repair/rebuild cycles each went through and at any thread
    /// count.
    pub fn with_seed(g: &AttributedGraph, cfg: CodConfig, seed: u64) -> Self {
        let mut me = Self::shell(g, cfg, seed);
        if cfg.parallelism.is_seeded() {
            match me.rebuild_seeded(None) {
                Ok(()) => {}
                Err(_) => unreachable!("an ungoverned rebuild has no token to cancel it"),
            }
        } else {
            // Serial builds have no per-sample seeds; derive the legacy
            // stream from the seed so construction stays deterministic.
            let mut rng = SmallRng::seed_from_u64(seed);
            me.rebuild_stream(&mut rng);
        }
        me
    }

    /// Rehydrates a dynamic engine from checkpointed artifacts (a CODX v3
    /// snapshot) without rebuilding anything — the recovery path.
    ///
    /// Requires a seeded configuration: the artifacts are only replayable
    /// because every rebuild derives from the pinned `himor_seed`, so a
    /// serial (unseeded) instance could not reconcile a WAL suffix with
    /// them. The restored cache carries no patch state — the first
    /// topology flush takes the seeded rebuild branch, which the
    /// determinism contract proves bit-identical to a from-scratch build
    /// (see `tests/mutation.rs`).
    pub fn from_artifacts(
        g: &AttributedGraph,
        dendro: Dendrogram,
        index: HimorIndex,
        cfg: CodConfig,
        himor_seed: u64,
    ) -> CodResult<Self> {
        if !cfg.parallelism.is_seeded() {
            return Err(CodError::InvalidQuery(
                "recovery from artifacts requires seeded parallelism \
                 (serial builds have no replayable seed)"
                    .into(),
            ));
        }
        let n = g.num_nodes();
        if dendro.num_leaves() != n || index.num_nodes() != n {
            return Err(CodError::IndexCorrupt(format!(
                "artifact size mismatch: graph has {n} nodes, dendrogram {} leaves, index {}",
                dendro.num_leaves(),
                index.num_nodes()
            )));
        }
        let mut me = Self::shell(g, cfg, himor_seed);
        let lca = LcaIndex::new(&dendro);
        me.cache = Some(Cache {
            graph: g.clone(),
            dendro,
            lca,
            index,
            patch: None,
            csr_stale: false,
        });
        Ok(me)
    }

    /// Flushes pending mutations and returns the current artifacts
    /// `(graph, dendrogram, index)` — the inputs of
    /// [`crate::codx::serialize_artifacts`], used by checkpointing and the
    /// recovery bit-identity proofs. Seeded configurations only (the
    /// flush would otherwise need a caller RNG stream).
    pub fn artifacts(&mut self) -> CodResult<(&AttributedGraph, &Dendrogram, &HimorIndex)> {
        if !self.cfg.parallelism.is_seeded() {
            return Err(CodError::InvalidQuery(
                "artifact snapshots require seeded parallelism".into(),
            ));
        }
        // The seeded flush path never touches the RNG; any stream works.
        let mut rng = SmallRng::seed_from_u64(self.himor_seed);
        self.flush(&mut rng)?;
        let Some(c) = self.cache.as_ref() else {
            unreachable!("flush populates the cache")
        };
        Ok((&c.graph, &c.dendro, &c.index))
    }

    fn shell(g: &AttributedGraph, cfg: CodConfig, himor_seed: u64) -> Self {
        let attrs = (0..g.num_nodes() as NodeId)
            .map(|v| g.node_attrs(v).to_vec())
            .collect();
        Self {
            topo: DeltaCsr::new(g.csr().clone()),
            attrs,
            interner: g.interner().clone(),
            cfg,
            rebuild_threshold: 0.02,
            cache: None,
            edits_since_build: 0,
            dirty: FxHashSet::default(),
            pool: PoolCache::new(cfg.pool_budget_bytes),
            himor_seed,
            log: MutationLog::new(),
            metrics: MetricsRegistry::default(),
            verify_repairs: true,
            unflushed: 0,
        }
    }

    /// Sets the edit fraction that forces a hierarchy + index rebuild
    /// instead of a localized repair (default 2% of `|E|`).
    pub fn set_rebuild_threshold(&mut self, fraction: f64) {
        self.rebuild_threshold = fraction.max(0.0);
    }

    /// Toggles the splice-vs-recluster verification cross-check run on
    /// every repair (on by default).
    pub fn set_repair_verification(&mut self, on: bool) {
        self.verify_repairs = on;
    }

    /// The pinned HIMOR seed (0 for serial configurations, which stream
    /// from the caller's RNG instead).
    pub fn himor_seed(&self) -> u64 {
        self.himor_seed
    }

    /// Current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.topo.num_edges()
    }

    /// Number of edits applied since the hierarchy was last rebuilt or
    /// repaired.
    pub fn pending_edits(&self) -> usize {
        self.edits_since_build
    }

    /// Every mutation applied so far, in order.
    pub fn mutation_log(&self) -> &MutationLog {
        &self.log
    }

    /// A point-in-time snapshot of the mutation/repair telemetry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Registry handle so the durability layer ([`crate::recovery`])
    /// records WAL/recovery counters into the same exposition.
    pub(crate) fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Applies a logged mutation. Returns whether it changed anything
    /// (duplicate edge inserts and absent-edge removals are no-ops).
    pub fn apply(&mut self, m: &Mutation) -> CodResult<bool> {
        match m {
            Mutation::InsertEdge { u, v } => Ok(self.insert_edge(*u, *v)),
            Mutation::RemoveEdge { u, v } => Ok(self.remove_edge(*u, *v)),
            Mutation::SetAttrs { node, attrs } => {
                self.set_attrs(*node, attrs.clone())?;
                Ok(true)
            }
        }
    }

    /// Inserts an undirected edge (growing the node range if needed).
    /// Returns false if it already existed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.topo.insert(u, v) {
            return false;
        }
        let n = self.topo.num_nodes();
        if n > self.attrs.len() {
            self.attrs.resize(n, Vec::new());
            if !self.cfg.parallelism.is_seeded() {
                // Serial builds cannot repair: new nodes invalidate the
                // hierarchy wholesale.
                self.cache = None;
            }
        }
        self.record_edge_event(Mutation::InsertEdge { u, v });
        true
    }

    /// Removes an undirected edge. Returns false if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.topo.remove(u, v) {
            return false;
        }
        self.record_edge_event(Mutation::RemoveEdge { u, v });
        true
    }

    /// Replaces the attribute set of a node. Errors with
    /// [`CodError::InvalidQuery`] if `v` is outside the node range.
    pub fn set_attrs(&mut self, v: NodeId, attrs: Vec<AttrId>) -> CodResult<()> {
        if (v as usize) >= self.num_nodes() {
            return Err(CodError::InvalidQuery(format!(
                "set_attrs target {v} out of range (graph has {} nodes)",
                self.num_nodes()
            )));
        }
        // The footprint covers old ∪ new attributes: pools keyed to either
        // side can see a different LORE choice / g_ℓ weighting, everything
        // else provably cannot.
        let mut fp = Footprint::new();
        fp.add_attr_event(
            v,
            self.attrs[v as usize]
                .iter()
                .copied()
                .chain(attrs.iter().copied()),
        );
        self.attrs[v as usize] = attrs.clone();
        // Attributes only affect LORE's choice and the g_ℓ weights — no
        // hierarchy invalidation needed, but the node's queries should not
        // take the index fast path blindly.
        self.dirty.insert(v);
        self.unflushed += 1;
        if let Some(c) = &mut self.cache {
            c.csr_stale = true; // attribute table lives in the cached graph
        }
        self.metrics.record_mutation(MutationKind::SetAttrs);
        self.log.push(Mutation::SetAttrs { node: v, attrs });
        self.evict_scoped(&fp);
        Ok(())
    }

    /// Interns an attribute name.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        self.interner.intern(name)
    }

    fn record_edge_event(&mut self, m: Mutation) {
        let (u, v) = match m {
            Mutation::InsertEdge { u, v } | Mutation::RemoveEdge { u, v } => (u, v),
            Mutation::SetAttrs { .. } => unreachable!("attribute edits use set_attrs"),
        };
        let mut fp = Footprint::new();
        fp.add_edge_event(u, v);
        self.metrics.record_mutation(m.kind());
        self.log.push(m);
        self.edits_since_build += 1;
        self.unflushed += 1;
        self.dirty.insert(u);
        self.dirty.insert(v);
        if let Some(c) = &mut self.cache {
            c.csr_stale = true;
        }
        self.evict_scoped(&fp);
        if !self.cfg.parallelism.is_seeded() {
            // Legacy serial behaviour: past the threshold the cache is
            // dropped eagerly (seeded builds decide repair-vs-rebuild at
            // flush time instead).
            let limit = (self.topo.num_edges() as f64 * self.rebuild_threshold) as usize;
            if self.edits_since_build > limit {
                self.cache = None;
            }
        }
    }

    /// Drops exactly the pooled RR graphs the footprint can stale:
    /// topology events evict unrestricted pools plus restricted pools
    /// whose universe contains a touched endpoint; attribute events evict
    /// pools keyed to a touched attribute. Everything else keeps its
    /// samples (they were drawn on a subgraph the mutation cannot reach).
    fn evict_scoped(&self, fp: &Footprint) {
        let (pools, _bytes) = if fp.touches_topology() {
            self.pool.invalidate_scoped(|e| {
                !e.restricted()
                    || fp
                        .nodes()
                        .iter()
                        .any(|&v| e.universe().binary_search(&v).is_ok())
            })
        } else {
            self.pool
                .invalidate_scoped(|e| e.attr().is_some_and(|a| fp.touches_attr(a)))
        };
        self.metrics.record_pool_scoped_evictions(pools as u64);
    }

    /// Rematerializes the cached graph (CSR + attribute table) from the
    /// overlay without touching the hierarchy or index.
    fn refresh_graph(&mut self) {
        let csr = self.topo.materialize();
        let graph = AttributedGraph::from_parts(
            csr,
            AttrTable::from_lists(self.attrs.clone()),
            self.interner.clone(),
        );
        if let Some(c) = self.cache.as_mut() {
            c.graph = graph;
            c.csr_stale = false;
        }
    }

    /// Legacy serial rebuild: consumes the caller's RNG stream and leaves
    /// no patch state behind.
    fn rebuild_stream<R: Rng>(&mut self, rng: &mut R) {
        let csr = self.topo.materialize();
        let dendro = build_hierarchy(&csr, self.cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let index = HimorIndex::build(&csr, self.cfg.model, &dendro, &lca, self.cfg.theta, rng);
        let graph = AttributedGraph::from_parts(
            csr.clone(),
            AttrTable::from_lists(self.attrs.clone()),
            self.interner.clone(),
        );
        self.topo.rebase(csr);
        self.cache = Some(Cache {
            graph,
            dendro,
            lca,
            index,
            patch: None,
            csr_stale: false,
        });
        self.edits_since_build = 0;
        self.dirty.clear();
        // A rebuild reshapes the hierarchy, so chain universes (the pool
        // keys) may all change; start the pooled generation over.
        self.pool.invalidate();
    }

    /// Seeded rebuild from the pinned seed, retaining the patch state so
    /// later mutations can repair instead of rebuilding.
    fn rebuild_seeded(&mut self, cancel: Option<&CancelToken>) -> CodResult<()> {
        let csr = self.topo.materialize();
        let dendro = build_hierarchy(&csr, self.cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let built = HimorIndex::build_seeded_patchable(
            &csr,
            self.cfg.model,
            &dendro,
            &lca,
            self.cfg.theta,
            self.himor_seed,
            self.cfg.parallelism,
            cancel,
        );
        let Some((index, patch)) = built else {
            return Err(CodError::DeadlineExceeded);
        };
        let graph = AttributedGraph::from_parts(
            csr.clone(),
            AttrTable::from_lists(self.attrs.clone()),
            self.interner.clone(),
        );
        self.topo.rebase(csr);
        self.cache = Some(Cache {
            graph,
            dendro,
            lca,
            index,
            patch: Some(patch),
            csr_stale: false,
        });
        self.edits_since_build = 0;
        self.dirty.clear();
        Ok(())
    }

    /// Localized repair: splice the dendrogram along the touched
    /// leaf-to-root paths and patch the HIMOR index, committing only when
    /// both succeed (a cancelled repair leaves every artifact as it was).
    fn repair_seeded(&mut self, cancel: Option<&CancelToken>) -> CodResult<FlushOutcome> {
        let new_csr = self.topo.materialize();
        let touched = self.topo.touched_nodes();
        failpoint::hit(Site::DendroRepair, cancel);
        if cancel.is_some_and(CancelToken::should_stop) {
            return Err(CodError::DeadlineExceeded);
        }
        let Some(cache) = self.cache.as_mut() else {
            unreachable!("flush checked the cache before choosing repair")
        };
        let rr = repair_merges(
            &cache.dendro,
            &new_csr,
            &touched,
            self.cfg.linkage,
            self.verify_repairs,
        );
        let new_dendro = Dendrogram::from_merges(new_csr.num_nodes(), &rr.merges);
        let new_lca = LcaIndex::new(&new_dendro);
        let diff = match_vertices(&cache.dendro, &new_dendro);
        let Some(mut patch) = cache.patch.take() else {
            unreachable!("flush checked the patch state before choosing repair")
        };
        let patched = patch.patch(
            &new_csr,
            self.cfg.model,
            &cache.dendro,
            &cache.lca,
            &new_dendro,
            &new_lca,
            &diff,
            &touched,
            self.cfg.parallelism,
            cancel,
        );
        let Some((index, stats)) = patched else {
            // Commit-at-end: the cancelled patch left the state untouched.
            cache.patch = Some(patch);
            return Err(CodError::DeadlineExceeded);
        };
        let graph = AttributedGraph::from_parts(
            new_csr.clone(),
            AttrTable::from_lists(self.attrs.clone()),
            self.interner.clone(),
        );
        self.topo.rebase(new_csr);
        self.cache = Some(Cache {
            graph,
            dendro: new_dendro,
            lca: new_lca,
            index,
            patch: Some(patch),
            csr_stale: false,
        });
        self.edits_since_build = 0;
        self.dirty.clear();
        Ok(FlushOutcome::Repaired {
            spliced: rr.outcome == RepairOutcome::Spliced,
            samples_redrawn: stats.samples_redrawn,
            samples_total: stats.samples_total,
        })
    }

    /// Forces an immediate hierarchy + index rebuild.
    pub fn rebuild<R: Rng>(&mut self, rng: &mut R) {
        if self.cfg.parallelism.is_seeded() {
            match self.rebuild_seeded(None) {
                Ok(()) => {}
                Err(_) => unreachable!("an ungoverned rebuild has no token to cancel it"),
            }
            // Explicit rebuilds keep the legacy contract: a fresh pooled
            // generation (and epoch bump) regardless of footprints.
            self.pool.invalidate();
        } else {
            self.rebuild_stream(rng);
        }
        self.unflushed = 0;
    }

    /// Brings every cached artifact current with the pending mutations.
    /// Seeded configurations choose between a localized repair and a full
    /// rebuild; serial ones refresh the graph and rebuild only when the
    /// edit threshold already dropped the cache.
    pub fn flush<R: Rng>(&mut self, rng: &mut R) -> CodResult<MutationFlushReport> {
        self.flush_governed(rng, None)
    }

    /// [`DynamicCod::flush`] under cooperative governance: the repair,
    /// patch and rebuild stages poll `cancel`, and a fired token returns
    /// [`CodError::DeadlineExceeded`] with every artifact unchanged (the
    /// pending mutations stay queued for the next flush).
    pub fn flush_governed<R: Rng>(
        &mut self,
        rng: &mut R,
        cancel: Option<&CancelToken>,
    ) -> CodResult<MutationFlushReport> {
        let events = self.unflushed;
        if !self.cfg.parallelism.is_seeded() {
            let outcome = if self.cache.is_none() {
                if events > 0 {
                    self.metrics.record_full_rebuild();
                }
                self.rebuild_stream(rng);
                FlushOutcome::Rebuilt
            } else if self.cache.as_ref().is_some_and(|c| c.csr_stale) {
                self.refresh_graph();
                FlushOutcome::Refreshed
            } else {
                FlushOutcome::Noop
            };
            self.unflushed = 0;
            return Ok(MutationFlushReport { outcome, events });
        }
        if self.cache.is_none() {
            self.rebuild_seeded(cancel)?;
            if events > 0 {
                self.metrics.record_full_rebuild();
            }
            self.unflushed = 0;
            return Ok(MutationFlushReport {
                outcome: FlushOutcome::Rebuilt,
                events,
            });
        }
        if !self.cache.as_ref().is_some_and(|c| c.csr_stale) {
            self.unflushed = 0;
            return Ok(MutationFlushReport {
                outcome: FlushOutcome::Noop,
                events,
            });
        }
        if self.topo.is_clean() {
            // Attribute-only (or net-zero edge) churn: the hierarchy and
            // index are still exact, only the attribute table moved.
            self.refresh_graph();
            self.edits_since_build = 0;
            self.dirty.clear();
            self.unflushed = 0;
            return Ok(MutationFlushReport {
                outcome: FlushOutcome::Refreshed,
                events,
            });
        }
        let grew = self
            .cache
            .as_ref()
            .is_some_and(|c| self.topo.num_nodes() > c.graph.num_nodes());
        let limit = (self.topo.num_edges() as f64 * self.rebuild_threshold) as usize;
        let repairable = self.cache.as_ref().is_some_and(|c| c.patch.is_some());
        let outcome = if grew || !repairable || self.edits_since_build > limit {
            self.rebuild_seeded(cancel)?;
            self.metrics.record_full_rebuild();
            FlushOutcome::Rebuilt
        } else {
            let outcome = self.repair_seeded(cancel)?;
            self.metrics.record_repair();
            outcome
        };
        self.unflushed = 0;
        Ok(MutationFlushReport { outcome, events })
    }

    /// Whether the next query for `q` may answer from the HIMOR fast path
    /// (false while `q` or the hierarchy is dirty).
    pub fn index_usable_for(&self, q: NodeId) -> bool {
        self.edits_since_build == 0 && !self.dirty.contains(&q)
    }

    /// Answers a COD query on the *current* graph. Seeded configurations
    /// flush pending mutations first (repairing or rebuilding as needed),
    /// so the answer is identical to a from-scratch instance of the
    /// mutated graph with the same seed. Serial configurations keep the
    /// legacy contract: the hierarchy may be up to `rebuild_threshold·|E|`
    /// edits stale, but all influence estimates are fresh.
    pub fn query<R: Rng>(
        &mut self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        if (q as usize) >= self.num_nodes() {
            return Err(CodError::InvalidQuery(format!(
                "query node {q} out of range (graph has {} nodes)",
                self.num_nodes()
            )));
        }
        if (attr as usize) >= self.interner.len() {
            return Err(CodError::InvalidQuery(format!(
                "unknown attribute id {attr} ({} interned attributes)",
                self.interner.len()
            )));
        }
        if self.cfg.k == 0 {
            return Err(CodError::InvalidQuery(
                "top-k rank threshold k must be at least 1".into(),
            ));
        }
        match self.flush_governed(rng, None) {
            Ok(_) => {}
            Err(_) => unreachable!("an ungoverned flush has no token to cancel it"),
        }
        let use_index = self.index_usable_for(q);
        let Some(c) = self.cache.as_ref() else {
            unreachable!("flush populates the cache")
        };
        let g = &c.graph;
        let choice = select_recluster_community(g, &c.dendro, &c.lca, q, attr);
        if use_index {
            let floor = choice.map(|x| x.vertex);
            if let Some(v) = c.index.largest_top_k(&c.dendro, q, floor, self.cfg.k) {
                let path = c.dendro.root_path(q);
                let Some(j) = path.iter().position(|&x| x == v) else {
                    unreachable!("largest_top_k only returns vertices on q's root path")
                };
                return Ok(Some(CodAnswer {
                    members: c.dendro.members_sorted(v),
                    rank: c.index.ranks_of(q)[j] as usize,
                    source: AnswerSource::Index,
                    uncertain: false,
                    cache: None,
                    degraded: None,
                    trace: None,
                }));
            }
        }
        // Compressed evaluation over the (possibly stale) chain with fresh
        // influence sampling — pooled (cross-query RR cache) when
        // `cfg.pool` is on, from the caller's RNG stream otherwise.
        match choice {
            None => {
                let chain = DendroChain::new(&c.dendro, &c.lca, q)?;
                if self.cfg.pool {
                    answer_from_chain_pooled(g, self.cfg, &chain, q, Some(attr), &self.pool)
                } else {
                    answer_from_chain(g, self.cfg, &chain, q, rng)
                }
            }
            Some(choice) => {
                let members = c.dendro.members_sorted(choice.vertex);
                let (sub, sd) = local_recluster(g, &members, attr, self.cfg.beta, self.cfg.linkage);
                let slca = LcaIndex::new(&sd);
                let lower = SubgraphChain::new(&sub, &sd, &slca, q, true)?;
                let chain = ComposedChain::new(lower, &c.dendro, &c.lca, choice.vertex)?;
                if self.cfg.pool {
                    answer_from_chain_pooled(g, self.cfg, &chain, q, Some(attr), &self.pool)
                } else {
                    answer_from_chain(g, self.cfg, &chain, q, rng)
                }
            }
        }
    }

    /// Gauges of the shared RR-pool cache (pools resident, bytes, epoch).
    pub fn pool_stats(&self) -> PoolCacheStats {
        self.pool.stats()
    }

    /// The pool cache's invalidation epoch — bumped by every edge insert
    /// or removal, attribute edit and rebuild, so tests can assert that no
    /// mutation path forgets to revisit pooled samples (scoped eviction
    /// bumps the epoch even when every pool survives).
    pub fn pool_epoch(&self) -> u64 {
        self.pool.epoch()
    }

    /// The current graph (rebuilding the CSR if edits are pending).
    pub fn graph<R: Rng>(&mut self, rng: &mut R) -> &AttributedGraph {
        match self.flush_governed(rng, None) {
            Ok(_) => {}
            Err(_) => unreachable!("an ungoverned flush has no token to cancel it"),
        }
        let Some(c) = self.cache.as_ref() else {
            unreachable!("flush populates the cache")
        };
        &c.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use cod_influence::Model;

    fn star_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        let attrs = AttrTable::from_lists(vec![vec![0]; 8]);
        let mut interner = AttrInterner::new();
        interner.intern("A");
        AttributedGraph::from_parts(b.build(), attrs, interner)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 100,
            model: Model::WeightedCascade,
            ..CodConfig::default()
        }
    }

    /// `cfg()` with seeded (deterministic per-sample) parallelism — the
    /// configuration family that unlocks the repair/patch pipeline.
    fn seeded_cfg() -> CodConfig {
        CodConfig {
            parallelism: cod_influence::Parallelism::Threads(1),
            ..cfg()
        }
    }

    #[test]
    fn behaves_like_codl_without_edits() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(61);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        assert!(dyn_cod.index_usable_for(0));
        let ans = dyn_cod
            .query(0, 0, &mut rng)
            .unwrap()
            .expect("hub answered");
        assert!(ans.members.contains(&0));
    }

    #[test]
    fn edits_disable_the_fast_path_until_rebuild() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(62);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(10.0); // avoid auto-rebuild
        assert!(dyn_cod.insert_edge(1, 2));
        assert!(!dyn_cod.index_usable_for(1));
        assert!(!dyn_cod.index_usable_for(4) || dyn_cod.pending_edits() == 0);
        let _ = dyn_cod.query(1, 0, &mut rng).unwrap();
        dyn_cod.rebuild(&mut rng);
        assert!(dyn_cod.index_usable_for(1));
        assert_eq!(dyn_cod.pending_edits(), 0);
    }

    #[test]
    fn influence_sees_fresh_edges_immediately() {
        // Node 7 starts as a path tail; attaching five new leaves to it
        // makes it a hub whose RR counts must reflect the new star even
        // before any rebuild.
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(63);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(10.0);
        for v in 8..13 {
            assert!(dyn_cod.insert_edge(7, v));
        }
        let graph = dyn_cod.graph(&mut rng);
        assert_eq!(graph.degree(7), 6);
        assert_eq!(graph.num_nodes(), 13);
    }

    #[test]
    fn duplicate_and_missing_edits_are_rejected() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(64);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        assert!(!dyn_cod.insert_edge(0, 1), "edge already present");
        assert!(!dyn_cod.insert_edge(3, 3), "self loop");
        assert!(!dyn_cod.remove_edge(0, 7), "edge absent");
        assert!(dyn_cod.remove_edge(1, 0), "reverse orientation works");
        assert_eq!(dyn_cod.num_edges(), 6);
    }

    #[test]
    fn threshold_triggers_automatic_rebuild() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(65);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(0.0); // every edit forces a rebuild
        dyn_cod.insert_edge(2, 3);
        // Next query flushes; with a zero threshold that is a full rebuild
        // and the fast path returns.
        let _ = dyn_cod.query(0, 0, &mut rng).unwrap();
        assert_eq!(dyn_cod.pending_edits(), 0);
        assert!(dyn_cod.index_usable_for(2));
        assert_eq!(dyn_cod.metrics_snapshot().full_rebuilds, 1);
    }

    #[test]
    fn attribute_edits_steer_lore() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(66);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        let b = dyn_cod.intern_attr("B");
        dyn_cod.set_attrs(6, vec![b]).unwrap();
        dyn_cod.set_attrs(7, vec![b]).unwrap();
        // Query on the new attribute works (and returns fresh attributes).
        let _ = dyn_cod.query(6, b, &mut rng).unwrap();
        let graph = dyn_cod.graph(&mut rng);
        assert!(graph.has_attr(6, b));
    }

    #[test]
    fn set_attrs_out_of_range_is_a_typed_error() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(67);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        let err = dyn_cod.set_attrs(99, vec![0]).unwrap_err();
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        assert_eq!(dyn_cod.mutation_log().len(), 0, "rejected edits unlogged");
    }

    #[test]
    fn mutation_log_and_metrics_track_applied_events_only() {
        // Duplicate edge inserts and absent removals must not be logged.
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(68);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(10.0);
        assert!(dyn_cod.insert_edge(1, 3));
        assert!(!dyn_cod.insert_edge(1, 3));
        assert!(dyn_cod.remove_edge(1, 3));
        assert!(!dyn_cod.remove_edge(1, 3));
        dyn_cod.set_attrs(2, vec![0]).unwrap();
        assert_eq!(dyn_cod.mutation_log().len(), 3);
        let snap = dyn_cod.metrics_snapshot();
        assert_eq!(snap.mutations_insert, 1);
        assert_eq!(snap.mutations_remove, 1);
        assert_eq!(snap.mutations_set_attrs, 1);
    }

    #[test]
    fn repair_flush_matches_a_from_scratch_instance() {
        let g = star_graph();
        let mut a = DynamicCod::with_seed(&g, seeded_cfg(), 4242);
        a.set_rebuild_threshold(10.0); // keep the repair path in play
        assert!(a.insert_edge(1, 2));
        let mut rng = SmallRng::seed_from_u64(7);
        let report = a.flush(&mut rng).unwrap();
        assert!(
            matches!(report.outcome, FlushOutcome::Repaired { .. }),
            "{report:?}"
        );
        assert_eq!(report.events, 1);
        assert_eq!(a.metrics_snapshot().repairs, 1);

        // A from-scratch replica of the mutated graph with the same seed.
        let mut b = GraphBuilder::new(8);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        b.add_edge(1, 2);
        let attrs = AttrTable::from_lists(vec![vec![0]; 8]);
        let mut interner = AttrInterner::new();
        interner.intern("A");
        let g2 = AttributedGraph::from_parts(b.build(), attrs, interner);
        let mut fresh = DynamicCod::with_seed(&g2, seeded_cfg(), 4242);

        for q in 0..8u32 {
            let mut r1 = SmallRng::seed_from_u64(100 + u64::from(q));
            let mut r2 = SmallRng::seed_from_u64(100 + u64::from(q));
            let x = a.query(q, 0, &mut r1).unwrap();
            let y = fresh.query(q, 0, &mut r2).unwrap();
            assert_eq!(
                x.map(|ans| (ans.members, ans.rank)),
                y.map(|ans| (ans.members, ans.rank)),
                "node {q}"
            );
        }
    }

    #[test]
    fn net_zero_churn_refreshes_without_repair() {
        let g = star_graph();
        let mut dyn_cod = DynamicCod::with_seed(&g, seeded_cfg(), 9);
        dyn_cod.set_rebuild_threshold(10.0);
        assert!(dyn_cod.insert_edge(1, 2));
        assert!(dyn_cod.remove_edge(1, 2));
        let mut rng = SmallRng::seed_from_u64(8);
        let report = dyn_cod.flush(&mut rng).unwrap();
        assert_eq!(report.outcome, FlushOutcome::Refreshed);
        assert_eq!(report.events, 2);
        let snap = dyn_cod.metrics_snapshot();
        assert_eq!(snap.repairs, 0);
        assert_eq!(snap.full_rebuilds, 0);
    }
}
