//! COD over evolving graphs (the paper's §IV-B / §VI future-work
//! direction).
//!
//! The paper observes that "updates to graphs have an impact on the
//! structure of hierarchical communities and the process of influence
//! propagation" and that the compressed hierarchy computation "cannot be
//! updated efficiently". [`DynamicCod`] therefore takes the pragmatic
//! middle road the paper's discussion suggests:
//!
//! * **influence is always fresh** — RR sampling runs on the current
//!   topology, so ranks inside any evaluated community reflect all edits;
//! * **the hierarchy and HIMOR index are versioned** — edits accumulate
//!   against the cached hierarchy; once more than `rebuild_threshold`
//!   edits (relative to `|E|`) pile up, both are rebuilt lazily on the
//!   next query;
//! * between rebuilds, queries run compressed evaluation over the cached
//!   (slightly stale) hierarchy but on the **current** graph, and the
//!   HIMOR fast path is disabled for any query node incident to an edit
//!   (its local structure may have changed) — edits elsewhere cannot
//!   change the node's own chain membership, only its estimates, which
//!   are re-sampled anyway.

use cod_graph::{
    AttrId, AttrInterner, AttrTable, AttributedGraph, FxHashSet, GraphBuilder, NodeId,
};
use cod_hierarchy::LcaIndex;
use rand::prelude::*;

use crate::chain::{ComposedChain, DendroChain, SubgraphChain};
use crate::error::{CodError, CodResult};
use crate::himor::HimorIndex;
use crate::lore::select_recluster_community;
use crate::pipeline::{
    answer_from_chain, answer_from_chain_pooled, AnswerSource, CodAnswer, CodConfig,
};
use crate::pool::{PoolCache, PoolCacheStats};
use crate::recluster::{build_hierarchy, local_recluster};

/// A COD engine over a mutable attributed graph.
pub struct DynamicCod {
    num_nodes: usize,
    edges: FxHashSet<(NodeId, NodeId)>,
    attrs: Vec<Vec<AttrId>>,
    interner: AttrInterner,
    cfg: CodConfig,
    /// Fraction of `|E|` worth of edits that triggers a full rebuild.
    rebuild_threshold: f64,
    cache: Option<Cache>,
    edits_since_build: usize,
    /// Nodes touched by edits since the last rebuild.
    dirty: FxHashSet<NodeId>,
    /// Shared RR-pool cache for [`CodConfig::pool`] queries. Invalidated on
    /// *every* mutation — pooled samples bake in the topology they were
    /// drawn on, so unlike the hierarchy they can never be served stale.
    pool: PoolCache,
}

struct Cache {
    graph: AttributedGraph,
    dendro: cod_hierarchy::Dendrogram,
    lca: LcaIndex,
    index: HimorIndex,
    /// Graph edits newer than `graph` (CSR needs refresh before queries).
    csr_stale: bool,
}

impl DynamicCod {
    /// Starts from an existing attributed graph.
    pub fn new<R: Rng>(g: &AttributedGraph, cfg: CodConfig, rng: &mut R) -> Self {
        let mut edges = FxHashSet::default();
        for (u, v) in g.edges() {
            edges.insert((u, v));
        }
        let attrs = (0..g.num_nodes() as NodeId)
            .map(|v| g.node_attrs(v).to_vec())
            .collect();
        let mut me = Self {
            num_nodes: g.num_nodes(),
            edges,
            attrs,
            interner: g.interner().clone(),
            cfg,
            rebuild_threshold: 0.02,
            cache: None,
            edits_since_build: 0,
            dirty: FxHashSet::default(),
            pool: PoolCache::new(cfg.pool_budget_bytes),
        };
        me.rebuild(rng);
        me
    }

    /// Sets the edit fraction that forces a hierarchy + index rebuild
    /// (default 2% of `|E|`).
    pub fn set_rebuild_threshold(&mut self, fraction: f64) {
        self.rebuild_threshold = fraction.max(0.0);
    }

    /// Current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of edits applied since the hierarchy was last rebuilt.
    pub fn pending_edits(&self) -> usize {
        self.edits_since_build
    }

    /// Inserts an undirected edge (growing the node range if needed).
    /// Returns false if it already existed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        let grew = key.1 as usize >= self.num_nodes;
        if grew {
            self.num_nodes = key.1 as usize + 1;
            self.attrs.resize(self.num_nodes, Vec::new());
            // New nodes invalidate the hierarchy wholesale.
            self.cache = None;
        }
        if self.edges.insert(key) {
            self.note_edit(u, v);
            true
        } else {
            false
        }
    }

    /// Removes an undirected edge. Returns false if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = (u.min(v), u.max(v));
        if self.edges.remove(&key) {
            self.note_edit(u, v);
            true
        } else {
            false
        }
    }

    /// Replaces the attribute set of a node.
    pub fn set_attrs(&mut self, v: NodeId, attrs: Vec<AttrId>) {
        assert!((v as usize) < self.num_nodes);
        self.attrs[v as usize] = attrs;
        // Attributes only affect LORE's choice and the g_ℓ weights — no
        // hierarchy invalidation needed, but the node's queries should not
        // take the index fast path blindly.
        self.dirty.insert(v);
        if let Some(c) = &mut self.cache {
            c.csr_stale = true; // attribute table lives in the cached graph
        }
        // Attribute edits change LORE's choice and thus which universe a
        // query's chain spans; stale pools must not shadow the new keys.
        self.pool.invalidate();
    }

    /// Interns an attribute name.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        self.interner.intern(name)
    }

    fn note_edit(&mut self, u: NodeId, v: NodeId) {
        self.edits_since_build += 1;
        self.dirty.insert(u);
        self.dirty.insert(v);
        if let Some(c) = &mut self.cache {
            c.csr_stale = true;
        }
        // Pooled RR graphs were traversed on the pre-edit topology: drop
        // them all so no query folds samples the current graph disowns.
        self.pool.invalidate();
        let limit = (self.edges.len() as f64 * self.rebuild_threshold) as usize;
        if self.edits_since_build > limit {
            self.cache = None;
        }
    }

    fn materialize_graph(&self) -> AttributedGraph {
        // The edge set iterates in insertion-history order; sort so the
        // materialized graph is a pure function of the edge *set*. (The CSR
        // builder sorts adjacency lists anyway — this keeps the invariant
        // local and explicit rather than relying on it downstream.)
        let mut edges: Vec<(NodeId, NodeId)> = self.edges.iter().copied().collect();
        edges.sort_unstable();
        let mut b = GraphBuilder::with_capacity(self.num_nodes, edges.len());
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        AttributedGraph::from_parts(
            b.build(),
            AttrTable::from_lists(self.attrs.clone()),
            self.interner.clone(),
        )
    }

    /// Forces an immediate hierarchy + index rebuild.
    pub fn rebuild<R: Rng>(&mut self, rng: &mut R) {
        let graph = self.materialize_graph();
        let dendro = build_hierarchy(graph.csr(), self.cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let index = if self.cfg.parallelism.is_seeded() {
            HimorIndex::build_seeded(
                graph.csr(),
                self.cfg.model,
                &dendro,
                &lca,
                self.cfg.theta,
                rng.next_u64(),
                self.cfg.parallelism,
            )
        } else {
            HimorIndex::build(
                graph.csr(),
                self.cfg.model,
                &dendro,
                &lca,
                self.cfg.theta,
                rng,
            )
        };
        self.cache = Some(Cache {
            graph,
            dendro,
            lca,
            index,
            csr_stale: false,
        });
        self.edits_since_build = 0;
        self.dirty.clear();
        // A rebuild reshapes the hierarchy, so chain universes (the pool
        // keys) may all change; start the pooled generation over.
        self.pool.invalidate();
    }

    fn ensure_cache<R: Rng>(&mut self, rng: &mut R) {
        if self.cache.is_none() {
            self.rebuild(rng);
            return;
        }
        if self.cache.as_ref().is_some_and(|c| c.csr_stale) {
            // Refresh the topology without rebuilding hierarchy/index: the
            // influence process must see current edges.
            let graph = self.materialize_graph();
            if let Some(c) = self.cache.as_mut() {
                c.graph = graph;
                c.csr_stale = false;
            }
        }
    }

    /// Whether the next query for `q` may answer from the HIMOR fast path
    /// (false while `q` or the hierarchy is dirty).
    pub fn index_usable_for(&self, q: NodeId) -> bool {
        self.edits_since_build == 0 && !self.dirty.contains(&q)
    }

    /// Answers a COD query on the *current* graph. Equivalent to
    /// [`crate::pipeline::Codl::query`] when no edits are pending; with
    /// pending edits the hierarchy is up to `rebuild_threshold·|E|` edits
    /// stale, but all influence estimates are fresh.
    pub fn query<R: Rng>(
        &mut self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        if (q as usize) >= self.num_nodes {
            return Err(CodError::InvalidQuery(format!(
                "query node {q} out of range (graph has {} nodes)",
                self.num_nodes
            )));
        }
        if (attr as usize) >= self.interner.len() {
            return Err(CodError::InvalidQuery(format!(
                "unknown attribute id {attr} ({} interned attributes)",
                self.interner.len()
            )));
        }
        if self.cfg.k == 0 {
            return Err(CodError::InvalidQuery(
                "top-k rank threshold k must be at least 1".into(),
            ));
        }
        self.ensure_cache(rng);
        let use_index = self.index_usable_for(q);
        let Some(c) = self.cache.as_ref() else {
            unreachable!("ensure_cache populates the cache")
        };
        let g = &c.graph;
        let choice = select_recluster_community(g, &c.dendro, &c.lca, q, attr);
        if use_index {
            let floor = choice.map(|x| x.vertex);
            if let Some(v) = c.index.largest_top_k(&c.dendro, q, floor, self.cfg.k) {
                let path = c.dendro.root_path(q);
                let Some(j) = path.iter().position(|&x| x == v) else {
                    unreachable!("largest_top_k only returns vertices on q's root path")
                };
                return Ok(Some(CodAnswer {
                    members: c.dendro.members_sorted(v),
                    rank: c.index.ranks_of(q)[j] as usize,
                    source: AnswerSource::Index,
                    uncertain: false,
                    cache: None,
                    degraded: None,
                    trace: None,
                }));
            }
        }
        // Compressed evaluation over the (possibly stale) chain with fresh
        // influence sampling — pooled (cross-query RR cache) when
        // `cfg.pool` is on, from the caller's RNG stream otherwise.
        match choice {
            None => {
                let chain = DendroChain::new(&c.dendro, &c.lca, q)?;
                if self.cfg.pool {
                    answer_from_chain_pooled(g, self.cfg, &chain, q, Some(attr), &self.pool)
                } else {
                    answer_from_chain(g, self.cfg, &chain, q, rng)
                }
            }
            Some(choice) => {
                let members = c.dendro.members_sorted(choice.vertex);
                let (sub, sd) = local_recluster(g, &members, attr, self.cfg.beta, self.cfg.linkage);
                let slca = LcaIndex::new(&sd);
                let lower = SubgraphChain::new(&sub, &sd, &slca, q, true)?;
                let chain = ComposedChain::new(lower, &c.dendro, &c.lca, choice.vertex)?;
                if self.cfg.pool {
                    answer_from_chain_pooled(g, self.cfg, &chain, q, Some(attr), &self.pool)
                } else {
                    answer_from_chain(g, self.cfg, &chain, q, rng)
                }
            }
        }
    }

    /// Gauges of the shared RR-pool cache (pools resident, bytes, epoch).
    pub fn pool_stats(&self) -> PoolCacheStats {
        self.pool.stats()
    }

    /// The pool cache's invalidation epoch — bumped by every edge insert
    /// or removal, attribute edit and rebuild, so tests can assert that no
    /// mutation path forgets to drop pooled samples.
    pub fn pool_epoch(&self) -> u64 {
        self.pool.epoch()
    }

    /// The current graph (rebuilding the CSR if edits are pending).
    pub fn graph<R: Rng>(&mut self, rng: &mut R) -> &AttributedGraph {
        self.ensure_cache(rng);
        let Some(c) = self.cache.as_ref() else {
            unreachable!("ensure_cache populates the cache")
        };
        &c.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::GraphBuilder;
    use cod_influence::Model;

    fn star_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        let attrs = AttrTable::from_lists(vec![vec![0]; 8]);
        let mut interner = AttrInterner::new();
        interner.intern("A");
        AttributedGraph::from_parts(b.build(), attrs, interner)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 100,
            model: Model::WeightedCascade,
            ..CodConfig::default()
        }
    }

    #[test]
    fn behaves_like_codl_without_edits() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(61);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        assert!(dyn_cod.index_usable_for(0));
        let ans = dyn_cod
            .query(0, 0, &mut rng)
            .unwrap()
            .expect("hub answered");
        assert!(ans.members.contains(&0));
    }

    #[test]
    fn edits_disable_the_fast_path_until_rebuild() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(62);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(10.0); // avoid auto-rebuild
        assert!(dyn_cod.insert_edge(1, 2));
        assert!(!dyn_cod.index_usable_for(1));
        assert!(!dyn_cod.index_usable_for(4) || dyn_cod.pending_edits() == 0);
        let _ = dyn_cod.query(1, 0, &mut rng).unwrap();
        dyn_cod.rebuild(&mut rng);
        assert!(dyn_cod.index_usable_for(1));
        assert_eq!(dyn_cod.pending_edits(), 0);
    }

    #[test]
    fn influence_sees_fresh_edges_immediately() {
        // Node 7 starts as a path tail; attaching five new leaves to it
        // makes it a hub whose RR counts must reflect the new star even
        // before any rebuild.
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(63);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(10.0);
        for v in 8..13 {
            assert!(dyn_cod.insert_edge(7, v));
        }
        let graph = dyn_cod.graph(&mut rng);
        assert_eq!(graph.degree(7), 6);
        assert_eq!(graph.num_nodes(), 13);
    }

    #[test]
    fn duplicate_and_missing_edits_are_rejected() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(64);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        assert!(!dyn_cod.insert_edge(0, 1), "edge already present");
        assert!(!dyn_cod.insert_edge(3, 3), "self loop");
        assert!(!dyn_cod.remove_edge(0, 7), "edge absent");
        assert!(dyn_cod.remove_edge(1, 0), "reverse orientation works");
        assert_eq!(dyn_cod.num_edges(), 6);
    }

    #[test]
    fn threshold_triggers_automatic_rebuild() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(65);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        dyn_cod.set_rebuild_threshold(0.0); // every edit invalidates
        dyn_cod.insert_edge(2, 3);
        // Cache dropped; next query rebuilds and the fast path returns.
        let _ = dyn_cod.query(0, 0, &mut rng).unwrap();
        assert_eq!(dyn_cod.pending_edits(), 0);
        assert!(dyn_cod.index_usable_for(2));
    }

    #[test]
    fn attribute_edits_steer_lore() {
        let g = star_graph();
        let mut rng = SmallRng::seed_from_u64(66);
        let mut dyn_cod = DynamicCod::new(&g, cfg(), &mut rng);
        let b = dyn_cod.intern_attr("B");
        dyn_cod.set_attrs(6, vec![b]);
        dyn_cod.set_attrs(7, vec![b]);
        // Query on the new attribute works (and returns fresh attributes).
        let _ = dyn_cod.query(6, b, &mut rng).unwrap();
        let graph = dyn_cod.graph(&mut rng);
        assert!(graph.has_attr(6, b));
    }
}
