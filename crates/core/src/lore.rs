//! Algorithm 2 (`QueryAttrRelated`): the LORE reclustering score (§IV-A).
//!
//! For each community `C_i(q)` on the query node's root path, the
//! reclustering score is
//!
//! ```text
//! r(C_i) · |C_i| = Σ_{j = 1..i} Δ(C_j) · dep(C_j)          (Eq. 3/4)
//! ```
//!
//! where `Δ(C)` counts the query-attributed edges whose lowest common
//! ancestor is exactly `C` (the edges `C` "divides" into different
//! children). LORE reclusters the community with the maximum score;
//! on ties the deepest maximum wins (Algorithm 2 keeps the first strict
//! improvement).

use cod_graph::{AttrId, AttributedGraph, NodeId};
use cod_hierarchy::{Dendrogram, LcaIndex, VertexId};

/// The community LORE chose for reclustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReclusterChoice {
    /// The chosen community `C_ℓ` as a vertex of the non-attributed
    /// hierarchy `T`.
    pub vertex: VertexId,
    /// Its index on the query node's root path (0 = deepest).
    pub chain_index: usize,
    /// Its reclustering score `r(C_ℓ)`.
    pub score: f64,
}

/// Computes the reclustering scores of all communities on `q`'s root path
/// and returns the maximizer (Algorithm 2, `QueryAttrRelated`).
///
/// Returns `None` when no query-attributed edge is split on the path (all
/// scores zero) — CODL then skips reclustering and answers from the
/// non-attributed hierarchy alone.
pub fn select_recluster_community(
    g: &AttributedGraph,
    dendro: &Dendrogram,
    lca: &LcaIndex,
    q: NodeId,
    attr: AttrId,
) -> Option<ReclusterChoice> {
    let scores = recluster_scores(g, dendro, lca, q, attr)?;
    let path = dendro.root_path(q);
    let mut best: Option<ReclusterChoice> = None;
    for (i, &score) in scores.iter().enumerate() {
        let improves = match best {
            None => score > 0.0,
            Some(b) => score > b.score,
        };
        if improves {
            best = Some(ReclusterChoice {
                vertex: path[i],
                chain_index: i,
                score,
            });
        }
    }
    best
}

/// The raw reclustering scores `r(C_i(q))` for every community on `q`'s
/// root path (index 0 = deepest). `r(C_0) = 0` by definition (no chain
/// descendant can divide an edge). Returns `None` for an empty path.
pub fn recluster_scores(
    g: &AttributedGraph,
    dendro: &Dendrogram,
    lca: &LcaIndex,
    q: NodeId,
    attr: AttrId,
) -> Option<Vec<f64>> {
    let path = dendro.root_path(q);
    if path.is_empty() {
        return None;
    }
    let m = path.len();
    // depth(path[i]) = base - i.
    let base = dendro.depth(dendro.leaf(q)) - 1;

    // Δ[i] = number of query-attributed edges whose lca is path[i].
    let mut delta = vec![0u64; m];
    for (u, v) in g.edges() {
        if !g.edge_is_attributed(u, v, attr) {
            continue;
        }
        let c = lca.lca(dendro.leaf(u), dendro.leaf(v));
        // "if q ∈ lca(u, v)" — only communities on q's path count.
        if !dendro.contains(c, q) {
            continue;
        }
        let d = dendro.depth(c);
        debug_assert!(d <= base, "an lca of two distinct leaves is internal");
        let i = (base - d) as usize;
        delta[i] += 1;
    }

    // Prefix sums of Δ(C_j)·dep(C_j) over j = 1..i, divided by |C_i|.
    let mut scores = vec![0.0; m];
    let mut s = 0u64;
    for i in 1..m {
        s += delta[i] * u64::from(base - i as u32);
        scores[i] = s as f64 / dendro.size(path[i]) as f64;
    }
    Some(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};
    use cod_hierarchy::Merge;

    /// The paper's running example: Fig. 2 graph + Fig. 5 attributes.
    ///
    /// Hierarchy: C_0 = {0,1,2,3}, C_1 = {4,5}, C_2 = {6,7},
    /// C_3 = C_0 ∪ C_2, C_4 = C_3 ∪ C_1, C_5 = {8,9}, C_6 = root.
    /// Edges (Fig. 2): within C_0: (0,1),(0,2),(0,3),(1,2),(2,3);
    /// (2,4),(3,5),(4,5),(3,7),(3,6),(6,7),(5,6),(6,8),(8,9),(6,9).
    /// DB attribute (Fig. 5) on: v0, v2, v3, v4, v5, v7 — chosen so that
    /// δ(v0, C_4) = {(2,4),(3,5),(3,7)} as in Example 5.
    fn paper_example() -> (AttributedGraph, Dendrogram, LcaIndex) {
        let mut b = GraphBuilder::new(10);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (2, 3),
            (2, 4),
            (3, 5),
            (4, 5),
            (3, 7),
            (3, 6),
            (6, 7),
            (5, 6),
            (6, 8),
            (8, 9),
            (6, 9),
        ] {
            b.add_edge(u, v);
        }
        let csr = b.build();
        let mut interner = AttrInterner::new();
        let db = interner.intern("DB");
        assert_eq!(db, 0);
        let ml = interner.intern("ML");
        let attr_of = |v: NodeId| -> Vec<AttrId> {
            match v {
                0 | 2 | 3 | 4 | 5 | 7 => vec![db],
                _ => vec![ml],
            }
        };
        let attrs = AttrTable::from_lists((0..10).map(attr_of).collect());
        let g = AttributedGraph::from_parts(csr, attrs, interner);

        let merges = vec![
            Merge { a: 0, b: 1 },   // 10
            Merge { a: 10, b: 2 },  // 11
            Merge { a: 11, b: 3 },  // 12 = C_0
            Merge { a: 4, b: 5 },   // 13 = C_1
            Merge { a: 6, b: 7 },   // 14 = C_2
            Merge { a: 12, b: 14 }, // 15 = C_3
            Merge { a: 15, b: 13 }, // 16 = C_4
            Merge { a: 8, b: 9 },   // 17 = C_5
            Merge { a: 16, b: 17 }, // 18 = C_6 (root)
        ];
        let d = Dendrogram::from_merges(10, &merges);
        let lca = LcaIndex::new(&d);
        (g, d, lca)
    }

    /// Hand-computed scores on the *binary* refinement of the paper's tree.
    ///
    /// The path of `v_0` is `[10, 11, 12=C_0, 15=C_3, 16=C_4, 18=C_6]` with
    /// depths `6..1`. Query-attributed (DB) edge lcas on the path:
    /// `(0,2)→11`, `(0,3),(2,3)→12`, `(3,7)→15`, `(2,4),(3,5)→16`
    /// (`(4,5)→13` is off-path and ignored, as in Example 5). Hence
    /// `Δ = [0, 1, 2, 1, 2, 0]` and the Eq.-3 prefix recursion gives
    /// `r = [0, 5/3, 13/4, 16/6, 20/8, 20/10]`.
    ///
    /// Note the paper's own Example 6 numbers (`r(C_3) = 1/2`,
    /// `r(C_4) = 7/8`) assume the illustrated 4-ary tree where `C_0` has no
    /// internal structure; with `C_0` refined, its internal DB edges count
    /// toward every ancestor, exactly as Definition 4 prescribes.
    #[test]
    fn scores_follow_eq3_recursion_on_binary_fig2() {
        let (g, d, lca) = paper_example();
        let scores = recluster_scores(&g, &d, &lca, 0, 0).unwrap();
        let expect = [0.0, 5.0 / 3.0, 13.0 / 4.0, 16.0 / 6.0, 20.0 / 8.0, 2.0];
        assert_eq!(scores.len(), expect.len());
        for (i, (&got, &want)) in scores.iter().zip(expect.iter()).enumerate() {
            assert!((got - want).abs() < 1e-12, "i={i}: {got} vs {want}");
        }
    }

    #[test]
    fn selects_the_score_maximizer() {
        let (g, d, lca) = paper_example();
        let choice = select_recluster_community(&g, &d, &lca, 0, 0).unwrap();
        assert_eq!(
            choice.vertex, 12,
            "C_0 maximizes the score on the binary tree"
        );
        assert_eq!(choice.chain_index, 2);
        assert!((choice.score - 13.0 / 4.0).abs() < 1e-12);
    }

    /// The exact Example 5/6 arithmetic, checked on the sub-expression the
    /// paper isolates: the contributions of the edges divided *above* C_0.
    #[test]
    fn example_6_arithmetic_above_c0() {
        let (g, d, lca) = paper_example();
        let path = d.root_path(0);
        let base = d.depth(d.leaf(0)) - 1;
        // Δ(C_3)·dep(C_3) = 1·3 and Δ(C_4)·dep(C_4) = 2·2, as in Example 6.
        let mut above_c0 = std::collections::BTreeMap::new();
        for (u, v) in g.edges() {
            if !g.edge_is_attributed(u, v, 0) {
                continue;
            }
            let c = lca.lca(d.leaf(u), d.leaf(v));
            if d.contains(c, 0) && d.depth(c) <= 3 {
                *above_c0.entry(c).or_insert(0u64) += 1;
            }
        }
        assert_eq!(above_c0.get(&15), Some(&1)); // C_3 divides (3,7)
        assert_eq!(above_c0.get(&16), Some(&2)); // C_4 divides (2,4),(3,5)
                                                 // Reconstruct the paper's r(C_3), r(C_4) over the named communities:
        let r_c3: f64 = 3.0 / 6.0;
        let r_c4 = (3 + 2 * 2) as f64 / 8.0;
        assert!((r_c3 - 0.5).abs() < 1e-12);
        assert!((r_c4 - 7.0 / 8.0).abs() < 1e-12);
        let _ = (path, base);
    }

    #[test]
    fn deepest_community_scores_zero() {
        let (g, d, lca) = paper_example();
        let scores = recluster_scores(&g, &d, &lca, 0, 0).unwrap();
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn no_attributed_edges_yields_none() {
        let (g, d, lca) = paper_example();
        // Attribute id 1 = ML: only v1, v6, v8, v9 carry it; the edges
        // among them on v0's path: (6,8),(6,9),(8,9) have lcas C_6/C_6/C_5.
        // C_5 does not contain v0, so only Δ(root) grows — root score is
        // positive. Use a fresh attribute id with no nodes instead.
        assert!(select_recluster_community(&g, &d, &lca, 0, 99).is_none());
    }

    #[test]
    fn ml_edges_divided_only_at_root_give_root_score() {
        let (g, d, lca) = paper_example();
        let scores = recluster_scores(&g, &d, &lca, 0, 1).unwrap();
        let path = d.root_path(0);
        let root_idx = path.len() - 1;
        // (6,8) and (6,9) have lca = root (depth 1): r(root) = 2·1/10.
        assert!((scores[root_idx] - 0.2).abs() < 1e-12, "{scores:?}");
        let choice = select_recluster_community(&g, &d, &lca, 0, 1).unwrap();
        assert_eq!(choice.chain_index, root_idx);
    }
}
