//! The replayable mutation log and invalidation footprints for streaming
//! graphs.
//!
//! [`DynamicCod`](crate::dynamic::DynamicCod) applies three kinds of
//! events — edge insertions, edge deletions and attribute replacements —
//! and repairs its artifacts incrementally. Two supporting pieces live
//! here:
//!
//! * [`Mutation`] / [`MutationLog`] — an append-only, persistable record
//!   of every event applied since the seed graph. Replaying the log over
//!   the same seed graph with the same configuration reproduces every
//!   artifact and every answer bit-identically (the determinism contract
//!   extends to 1/2/8-thread replays; see `tests/mutation.rs`).
//! * [`Footprint`] — the set of nodes and attributes an event (or a batch
//!   of events) can influence, used for *scoped* cache invalidation: only
//!   RR pools and recluster-cache entries intersecting the footprint are
//!   dropped, everything else stays resident.
//!
//! # CODM format, version 1
//!
//! The on-disk layout mirrors the CODX index format (`persist`): a fixed
//! header, one CRC-protected section and a total-length footer, all
//! integers little-endian:
//!
//! ```text
//! header:  magic "CODM" | version u32 = 1
//! events:  payload_len u64 | payload | crc32 u32
//!          payload = num_events u64
//!                  | per event: tag u8
//!                    tag 0 (insert) / 1 (remove): u u32, v u32
//!                    tag 2 (set_attrs): node u32, len u32, attrs u32 × len
//! footer:  total_len u64   (must equal the file's byte length)
//! ```
//!
//! A line-oriented text form (`add u v` / `del u v` / `attrs v a1,a2`)
//! backs the `cod mutate` CLI subcommand; `#` comments and blank lines are
//! skipped.

use std::io::Write;
use std::path::Path;

use cod_graph::{AttrId, NodeId};

use crate::error::{CodError, CodResult};
use crate::persist::crc32;

const MAGIC: &[u8; 4] = b"CODM";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

/// The kind of a [`Mutation`], for telemetry labels and summaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// An undirected edge was inserted.
    InsertEdge,
    /// An undirected edge was removed.
    RemoveEdge,
    /// A node's attribute set was replaced.
    SetAttrs,
}

impl MutationKind {
    /// The stable label used in Prometheus output and CLI summaries.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::InsertEdge => "insert",
            MutationKind::RemoveEdge => "remove",
            MutationKind::SetAttrs => "set_attrs",
        }
    }
}

/// One replayable event applied to a dynamic graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the undirected edge `{u, v}`.
    InsertEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Remove the undirected edge `{u, v}`.
    RemoveEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Replace `node`'s attribute set with `attrs`.
    SetAttrs {
        /// The node whose attributes change.
        node: NodeId,
        /// The new attribute set (order preserved as given).
        attrs: Vec<AttrId>,
    },
}

impl Mutation {
    /// This event's [`MutationKind`].
    pub fn kind(&self) -> MutationKind {
        match self {
            Mutation::InsertEdge { .. } => MutationKind::InsertEdge,
            Mutation::RemoveEdge { .. } => MutationKind::RemoveEdge,
            Mutation::SetAttrs { .. } => MutationKind::SetAttrs,
        }
    }
}

/// Appends one event in the CODM tag encoding (`tag u8` + fields). The
/// CODW write-ahead log reuses the same per-event layout, so the two
/// formats stay byte-compatible at the record level.
pub(crate) fn encode_event(m: &Mutation, out: &mut Vec<u8>) {
    match m {
        Mutation::InsertEdge { u, v } => {
            out.push(0);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Mutation::RemoveEdge { u, v } => {
            out.push(1);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Mutation::SetAttrs { node, attrs } => {
            out.push(2);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
            for a in attrs {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
    }
}

/// Decodes one event from `payload` starting at `*pos`, advancing `pos`
/// past it. Every malformation maps to [`CodError::IndexCorrupt`]; the
/// bytes are never trusted blindly.
pub(crate) fn decode_event(payload: &[u8], pos: &mut usize) -> CodResult<Mutation> {
    let take = |pos: &mut usize, n: usize, what: &str| -> CodResult<&[u8]> {
        if *pos + n > payload.len() {
            return Err(CodError::IndexCorrupt(format!(
                "truncated while reading {what}: need {n} bytes, {} remain",
                payload.len() - *pos
            )));
        }
        let s = &payload[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let read_u32 = |pos: &mut usize, what: &str| -> CodResult<u32> {
        let s = take(pos, 4, what)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap_or([0; 4])))
    };
    let tag = take(pos, 1, "event tag")?[0];
    match tag {
        0 | 1 => {
            let u = read_u32(pos, "edge endpoint")?;
            let v = read_u32(pos, "edge endpoint")?;
            Ok(if tag == 0 {
                Mutation::InsertEdge { u, v }
            } else {
                Mutation::RemoveEdge { u, v }
            })
        }
        2 => {
            let node = read_u32(pos, "attr node")?;
            let alen = read_u32(pos, "attr count")? as usize;
            if alen
                .checked_mul(4)
                .map(|bytes| *pos + bytes > payload.len())
                .unwrap_or(true)
            {
                return Err(CodError::IndexCorrupt(format!(
                    "event declares {alen} attributes but they overrun the payload"
                )));
            }
            let mut attrs = Vec::with_capacity(alen);
            for _ in 0..alen {
                attrs.push(read_u32(pos, "attr id")?);
            }
            Ok(Mutation::SetAttrs { node, attrs })
        }
        other => Err(CodError::IndexCorrupt(format!(
            "event has unknown tag {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Footprints
// ---------------------------------------------------------------------------

/// The region of the cached state a batch of mutations can influence.
///
/// Invalidation consults the footprint instead of dropping everything:
///
/// * a **topology** footprint (any edge event) invalidates artifacts that
///   depend on the adjacency structure — every recluster-cache entry, the
///   unrestricted RR pools, and restricted pools whose universe contains a
///   touched node;
/// * an **attribute** footprint (a `set_attrs` event) invalidates only the
///   recluster-cache entries and RR pools keyed by one of the touched
///   attributes — pools for disjoint attributes stay resident.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    nodes: Vec<NodeId>,
    attrs: Vec<AttrId>,
    topology: bool,
}

impl Footprint {
    /// An empty footprint (invalidates nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no state can be affected.
    pub fn is_empty(&self) -> bool {
        !self.topology && self.nodes.is_empty() && self.attrs.is_empty()
    }

    /// Whether the adjacency structure changed.
    pub fn touches_topology(&self) -> bool {
        self.topology
    }

    /// The touched nodes, sorted and deduplicated.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The touched attributes, sorted and deduplicated.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Whether `v` is one of the touched nodes.
    pub fn touches_node(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Whether `a` is one of the touched attributes.
    pub fn touches_attr(&self, a: AttrId) -> bool {
        self.attrs.binary_search(&a).is_ok()
    }

    /// Records a topology change touching `u` and `v`.
    pub fn add_edge_event(&mut self, u: NodeId, v: NodeId) {
        self.topology = true;
        self.add_node(u);
        self.add_node(v);
    }

    /// Records an attribute change on `node`. `attrs` should be the union
    /// of the node's old and new attribute sets — an influence score
    /// computed under either weighting may change.
    pub fn add_attr_event(&mut self, node: NodeId, attrs: impl IntoIterator<Item = AttrId>) {
        self.add_node(node);
        for a in attrs {
            if let Err(pos) = self.attrs.binary_search(&a) {
                self.attrs.insert(pos, a);
            }
        }
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Footprint) {
        self.topology |= other.topology;
        for &v in &other.nodes {
            self.add_node(v);
        }
        for &a in &other.attrs {
            if let Err(pos) = self.attrs.binary_search(&a) {
                self.attrs.insert(pos, a);
            }
        }
    }

    fn add_node(&mut self, v: NodeId) {
        if let Err(pos) = self.nodes.binary_search(&v) {
            self.nodes.insert(pos, v);
        }
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// An append-only record of every mutation applied since the seed graph.
///
/// The log is the determinism anchor for streaming mode: `seed graph +
/// config + log` reproduces every artifact bit-identically, regardless of
/// whether the original run repaired incrementally or rebuilt from
/// scratch, and regardless of thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationLog {
    events: Vec<Mutation>,
}

impl MutationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, m: Mutation) {
        self.events.push(m);
    }

    /// The recorded events, in application order.
    pub fn events(&self) -> &[Mutation] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    // -- binary form --------------------------------------------------------

    /// Serializes the log into a complete CODM v1 byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8 + self.events.len() * 9);
        payload.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for m in &self.events {
            encode_event(m, &mut payload);
        }
        let total = 4 + 4 + 8 + payload.len() + 4 + 8;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&(total as u64).to_le_bytes());
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Parses a CODM image. Every validation failure maps to
    /// [`CodError::IndexCorrupt`]; the bytes are never trusted blindly.
    pub fn from_bytes(bytes: &[u8]) -> CodResult<Self> {
        let corrupt = |msg: String| CodError::IndexCorrupt(msg);
        if bytes.len() < 4 + 4 + 8 + 4 + 8 {
            return Err(corrupt(format!(
                "mutation log too short: {} bytes",
                bytes.len()
            )));
        }
        if &bytes[..4] != MAGIC {
            return Err(corrupt("bad magic; not a COD mutation log".into()));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported mutation-log version {version} (expected {VERSION})"
            )));
        }
        let total = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap_or([0; 8]));
        if total != bytes.len() as u64 {
            return Err(corrupt(format!(
                "total-length footer says {total} bytes but the file has {}",
                bytes.len()
            )));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap_or([0; 8]));
        let avail = bytes.len() - (4 + 4 + 8 + 4 + 8);
        if len > avail as u64 {
            return Err(corrupt(format!(
                "events section declares {len} bytes but only {avail} are available"
            )));
        }
        let payload = &bytes[16..16 + len as usize];
        let stored = u32::from_le_bytes(
            bytes[16 + len as usize..16 + len as usize + 4]
                .try_into()
                .unwrap_or([0; 4]),
        );
        let actual = crc32(payload);
        if stored != actual {
            return Err(corrupt(format!(
                "events section checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        if 16 + len as usize + 4 + 8 != bytes.len() {
            return Err(corrupt(format!(
                "{} stray bytes between the events section and the footer",
                bytes.len() - (16 + len as usize + 4 + 8)
            )));
        }

        // Parse the validated payload with a bounds-checked cursor.
        let mut pos = 0usize;
        if payload.len() < 8 {
            return Err(corrupt(format!(
                "truncated while reading event count: need 8 bytes, {} remain",
                payload.len()
            )));
        }
        let count = u64::from_le_bytes(payload[..8].try_into().unwrap_or([0; 8]));
        pos += 8;
        // Each event is at least 9 bytes; validate before sizing the Vec.
        let fits = ((payload.len() - pos) / 9) as u64;
        if count > fits {
            return Err(corrupt(format!(
                "log declares {count} events but only {fits} fit in the remaining bytes"
            )));
        }
        let mut events = Vec::with_capacity(count as usize);
        for i in 0..count {
            let m = decode_event(payload, &mut pos).map_err(|e| match e {
                CodError::IndexCorrupt(msg) => corrupt(format!("event {i}: {msg}")),
                other => other,
            })?;
            events.push(m);
        }
        if pos != payload.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after the last event",
                payload.len() - pos
            )));
        }
        Ok(Self { events })
    }

    /// Writes the log to `path` atomically (unique temp sibling, fsync,
    /// rename), matching the CODX index discipline: a failure mid-save
    /// leaves any previous log intact.
    pub fn save(&self, path: &Path) -> CodResult<()> {
        let bytes = self.to_bytes();
        let tmp = temp_sibling(path);
        let result = (|| -> CodResult<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return result;
        }
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads a log written by [`MutationLog::save`].
    pub fn load(path: &Path) -> CodResult<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    // -- text form -----------------------------------------------------------

    /// Parses the line-oriented text form used by `cod mutate`:
    ///
    /// ```text
    /// add u v          # insert edge {u, v}
    /// del u v          # remove edge {u, v}
    /// attrs v a1,a2    # replace v's attributes (omit the list to clear)
    /// ```
    ///
    /// Blank lines and lines starting with `#` are skipped; a trailing
    /// `# comment` on any line is ignored.
    pub fn parse_text(text: &str) -> CodResult<Self> {
        let bad = |line_no: usize, msg: String| {
            CodError::GraphFormat(format!("mutation log line {line_no}: {msg}"))
        };
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let op = parts.next().unwrap_or("");
            let parse_node = |tok: Option<&str>, what: &str| -> CodResult<NodeId> {
                let tok = tok.ok_or_else(|| bad(line_no, format!("missing {what}")))?;
                tok.parse::<NodeId>()
                    .map_err(|_| bad(line_no, format!("bad {what} {tok:?}")))
            };
            match op {
                "add" | "del" => {
                    let u = parse_node(parts.next(), "endpoint")?;
                    let v = parse_node(parts.next(), "endpoint")?;
                    if parts.next().is_some() {
                        return Err(bad(
                            line_no,
                            format!("trailing tokens after '{op} {u} {v}'"),
                        ));
                    }
                    events.push(if op == "add" {
                        Mutation::InsertEdge { u, v }
                    } else {
                        Mutation::RemoveEdge { u, v }
                    });
                }
                "attrs" => {
                    let node = parse_node(parts.next(), "node")?;
                    let attrs = match parts.next() {
                        None => Vec::new(),
                        Some(list) => {
                            let mut attrs = Vec::new();
                            for tok in list.split(',').filter(|t| !t.is_empty()) {
                                attrs.push(tok.parse::<AttrId>().map_err(|_| {
                                    bad(line_no, format!("bad attribute id {tok:?}"))
                                })?);
                            }
                            attrs
                        }
                    };
                    if parts.next().is_some() {
                        return Err(bad(
                            line_no,
                            "attribute list must be one comma-separated token".into(),
                        ));
                    }
                    events.push(Mutation::SetAttrs { node, attrs });
                }
                other => {
                    return Err(bad(
                        line_no,
                        format!("unknown operation {other:?} (expected add, del or attrs)"),
                    ));
                }
            }
        }
        Ok(Self { events })
    }

    /// Renders the log in the text form accepted by [`MutationLog::parse_text`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.events {
            match m {
                Mutation::InsertEdge { u, v } => out.push_str(&format!("add {u} {v}\n")),
                Mutation::RemoveEdge { u, v } => out.push_str(&format!("del {u} {v}\n")),
                Mutation::SetAttrs { node, attrs } => {
                    let list = attrs
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    if list.is_empty() {
                        out.push_str(&format!("attrs {node}\n"));
                    } else {
                        out.push_str(&format!("attrs {node} {list}\n"));
                    }
                }
            }
        }
        out
    }
}

fn temp_sibling(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "mutations".to_string());
    path.with_file_name(format!(".{name}.tmp.{pid}.{seq}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> MutationLog {
        let mut log = MutationLog::new();
        log.push(Mutation::InsertEdge { u: 3, v: 9 });
        log.push(Mutation::RemoveEdge { u: 0, v: 4 });
        log.push(Mutation::SetAttrs {
            node: 7,
            attrs: vec![2, 5, 5],
        });
        log.push(Mutation::SetAttrs {
            node: 1,
            attrs: vec![],
        });
        log
    }

    #[test]
    fn binary_round_trip_preserves_events() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let back = MutationLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn text_round_trip_preserves_events() {
        let log = sample_log();
        let text = log.render_text();
        let back = MutationLog::parse_text(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn text_parser_skips_comments_and_reports_line_numbers() {
        let log = MutationLog::parse_text(
            "# header comment\n\nadd 1 2   # trailing comment\n  del 2 3\nattrs 4 0,1\n",
        )
        .unwrap();
        assert_eq!(log.len(), 3);
        let err = MutationLog::parse_text("add 1 2\nfrobnicate 3\n").unwrap_err();
        assert!(matches!(err, CodError::GraphFormat(m) if m.contains("line 2")));
        let err = MutationLog::parse_text("add 1\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_parser_rejects_corruption() {
        let log = sample_log();
        let bytes = log.to_bytes();

        // Bad magic.
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            MutationLog::from_bytes(&b),
            Err(CodError::IndexCorrupt(m)) if m.contains("magic")
        ));

        // Payload bit flip → checksum mismatch.
        let mut b = bytes.clone();
        b[20] ^= 0x01;
        assert!(matches!(
            MutationLog::from_bytes(&b),
            Err(CodError::IndexCorrupt(m)) if m.contains("checksum")
        ));

        // Appended garbage → footer mismatch.
        let mut b = bytes.clone();
        b.push(0);
        assert!(matches!(
            MutationLog::from_bytes(&b),
            Err(CodError::IndexCorrupt(m)) if m.contains("footer")
        ));

        // Truncations never panic.
        for keep in [0, 5, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                MutationLog::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes must fail"
            );
        }
    }

    #[test]
    fn huge_declared_count_errors_instead_of_allocating() {
        // Hand-build an image declaring u64::MAX events over a tiny payload.
        let payload = u64::MAX.to_le_bytes().to_vec();
        let total = 4 + 4 + 8 + payload.len() + 4 + 8;
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        b.extend_from_slice(&payload);
        b.extend_from_slice(&crc32(&payload).to_le_bytes());
        b.extend_from_slice(&(total as u64).to_le_bytes());
        assert!(matches!(
            MutationLog::from_bytes(&b),
            Err(CodError::IndexCorrupt(m)) if m.contains("events")
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let log = sample_log();
        let path = std::env::temp_dir().join(format!(
            "cod_mutation_log_{}_{:x}.codm",
            std::process::id(),
            &log as *const _ as usize
        ));
        log.save(&path).unwrap();
        let back = MutationLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, log);
    }

    #[test]
    fn footprint_tracks_nodes_attrs_and_topology() {
        let mut fp = Footprint::new();
        assert!(fp.is_empty());
        fp.add_edge_event(4, 2);
        fp.add_edge_event(2, 9);
        assert!(fp.touches_topology());
        assert_eq!(fp.nodes(), &[2, 4, 9]);
        assert!(fp.touches_node(4) && !fp.touches_node(3));

        let mut attrs = Footprint::new();
        attrs.add_attr_event(7, [3, 1, 3]);
        assert!(!attrs.touches_topology());
        assert_eq!(attrs.attrs(), &[1, 3]);
        assert!(attrs.touches_attr(1) && !attrs.touches_attr(2));

        fp.merge(&attrs);
        assert!(fp.touches_topology());
        assert_eq!(fp.nodes(), &[2, 4, 7, 9]);
        assert_eq!(fp.attrs(), &[1, 3]);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(MutationKind::InsertEdge.label(), "insert");
        assert_eq!(MutationKind::RemoveEdge.label(), "remove");
        assert_eq!(MutationKind::SetAttrs.label(), "set_attrs");
        assert_eq!(
            Mutation::SetAttrs {
                node: 0,
                attrs: vec![]
            }
            .kind(),
            MutationKind::SetAttrs
        );
    }
}
