//! On-disk persistence for the hierarchy and the HIMOR index.
//!
//! The HIMOR index is built once per graph (Θ = θ·|V| RR graphs, Table II
//! reports minutes on the large datasets) and reused across queries and
//! sessions — so a deployment wants it on disk, and wants to be able to
//! trust what it reads back. No external serialization crate is needed
//! (see `DESIGN.md` §6).
//!
//! # CODX format, version 2
//!
//! All integers are little-endian. The file is a fixed header, two
//! CRC-protected sections, and a total-length footer:
//!
//! ```text
//! header:     magic "CODX" | version u32 = 2
//! hierarchy:  payload_len u64 | payload | crc32 u32
//!             payload = num_leaves u64
//!                     | merges: (a u32, b u32) × (num_leaves - 1)
//! ranks:      payload_len u64 | payload | crc32 u32
//!             payload = theta u64
//!                     | per node: len u32, ranks u32 × len
//! footer:     total_len u64   (must equal the file's byte length)
//! ```
//!
//! Robustness properties:
//!
//! * **Per-section CRC32** (IEEE polynomial, hand-rolled table): any bit
//!   corruption inside a section payload or its checksum is detected.
//! * **Total-length footer**: corruption of a `payload_len` field either
//!   overruns the file (detected by bounds checks) or shifts the footer,
//!   whose value then disagrees with the real file length.
//! * **Bounded pre-allocation**: every declared element count is validated
//!   against the bytes actually remaining before any `Vec` is sized, so a
//!   corrupt count can never request more memory than the file's own size.
//! * **Atomic save**: [`save_index`] writes to a unique temp sibling,
//!   fsyncs, then renames over the target — a crash or write failure
//!   mid-save leaves any previous index file intact.
//! * **v1 compatibility**: files written by older versions (no checksums,
//!   no footer) are still loadable read-only, with the same bounded
//!   pre-allocation and structural validation; [`save_index`] always
//!   writes v2.
//!
//! Every load failure maps to [`CodError::IndexCorrupt`] (untrustworthy
//! bytes) or [`CodError::Io`] (the file could not be read at all) — never
//! a panic.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use cod_hierarchy::{Dendrogram, Merge};

use crate::error::{CodError, CodResult};
use crate::himor::HimorIndex;

const MAGIC: &[u8; 4] = b"CODX";
const VERSION: u32 = 2;
const V1: u32 = 1;
const V3: u32 = crate::codx::CODX_V3;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, no dependencies.
// ---------------------------------------------------------------------------

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC32 of `bytes` (IEEE; matches zlib's `crc32(0, ...)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn corrupt(msg: impl Into<String>) -> CodError {
    CodError::IndexCorrupt(msg.into())
}

/// Serializes `dendro` + `index` into a complete CODX v2 byte image.
pub fn serialize_index(dendro: &Dendrogram, index: &HimorIndex) -> CodResult<Vec<u8>> {
    let n = dendro.num_leaves();
    if index.num_nodes() != n {
        return Err(CodError::GraphFormat(format!(
            "index covers {} nodes but the hierarchy has {n} leaves",
            index.num_nodes()
        )));
    }

    let mut hier = Vec::with_capacity(8 + 8 * n.saturating_sub(1));
    hier.extend_from_slice(&(n as u64).to_le_bytes());
    for m in dendro.merges() {
        hier.extend_from_slice(&m.a.to_le_bytes());
        hier.extend_from_slice(&m.b.to_le_bytes());
    }

    let mut ranks = Vec::new();
    ranks.extend_from_slice(&(index.theta() as u64).to_le_bytes());
    for v in 0..n as u32 {
        let row = index.ranks_of(v);
        ranks.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &r in row {
            ranks.extend_from_slice(&r.to_le_bytes());
        }
    }

    let total = 4 + 4 + (8 + hier.len() + 4) + (8 + ranks.len() + 4) + 8;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    for section in [&hier, &ranks] {
        out.extend_from_slice(&(section.len() as u64).to_le_bytes());
        out.extend_from_slice(section);
        out.extend_from_slice(&crc32(section).to_le_bytes());
    }
    out.extend_from_slice(&(total as u64).to_le_bytes());
    debug_assert_eq!(out.len(), total);
    Ok(out)
}

/// Streams a CODX v2 image into `w`. Exposed primarily so tests can inject
/// write failures; [`save_index`] is the durable path.
pub fn write_index_to<W: Write>(
    w: &mut W,
    dendro: &Dendrogram,
    index: &HimorIndex,
) -> CodResult<()> {
    let bytes = serialize_index(dendro, index)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Per-process counter making concurrent saves use distinct temp names.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes the hierarchy and its HIMOR index to `path` atomically: the
/// image goes to a unique temp sibling first, is flushed and fsynced, and
/// only then renamed over `path`. A failure at any point leaves a
/// previously existing index file untouched.
pub fn save_index(path: &Path, dendro: &Dendrogram, index: &HimorIndex) -> CodResult<()> {
    let bytes = serialize_index(dendro, index)?;
    write_atomically(path, &bytes)
}

/// Writes the artifacts in the requested CODX version: `3` (the default
/// writer, out-of-core layout with the graph embedded — see
/// [`crate::codx`]) or `2` (compatibility; graph-free, eager-parse). Any
/// other version is rejected up front.
pub fn save_index_versioned(
    path: &Path,
    g: &cod_graph::AttributedGraph,
    dendro: &Dendrogram,
    index: &HimorIndex,
    version: u32,
) -> CodResult<()> {
    match version {
        VERSION => save_index(path, dendro, index),
        V3 => crate::codx::save_artifacts(path, g, dendro, index),
        other => Err(CodError::GraphFormat(format!(
            "cannot write CODX version {other} (supported: {VERSION}, {V3})"
        ))),
    }
}

/// Atomically replaces `path` with `bytes`: unique temp sibling, write,
/// fsync, rename. Shared by the v2 and v3 writers; a failure at any point
/// leaves a previously existing file untouched.
pub(crate) fn write_atomically(path: &Path, bytes: &[u8]) -> CodResult<()> {
    let tmp = temp_sibling(path);
    let result = (|| -> CodResult<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        // Best effort: do not leave the partial temp file behind.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Make the rename itself durable. Failure here does not endanger the
    // data (the rename already happened), so it is best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let seq = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "index".to_string());
    path.with_file_name(format!(".{name}.tmp.{pid}.{seq}"))
}

/// Removes stale atomic-save temp siblings (`.{name}.tmp.{pid}.{seq}`)
/// left in `dir` by processes that crashed between the write and the
/// rename. A temp file is removed only when its embedded pid is not this
/// process *and* provably dead (`/proc/{pid}` absent); anything
/// ambiguous — a live pid, an unparsable name, a platform without procfs —
/// is left alone, so a concurrent save can never lose its in-flight temp.
/// Returns how many files were removed.
pub fn sweep_temp_files(dir: &Path) -> CodResult<usize> {
    let mut removed = 0usize;
    let me = std::process::id();
    let procfs = Path::new("/proc").is_dir();
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // `.{orig}.tmp.{pid}.{seq}` — parse from the right, since `orig`
        // may itself contain dots.
        let Some(stripped) = name.strip_prefix('.') else {
            continue;
        };
        let Some((_orig, rest)) = stripped.split_once(".tmp.") else {
            continue;
        };
        let Some((pid, seq)) = rest.split_once('.') else {
            continue;
        };
        let (Ok(pid), Ok(_seq)) = (pid.parse::<u32>(), seq.parse::<u64>()) else {
            continue;
        };
        if pid == me || !procfs {
            continue;
        }
        if Path::new(&format!("/proc/{pid}")).exists() {
            continue; // owner still alive; its save may be in flight
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over the in-memory file image. Every read is
/// validated against the remaining bytes, so corrupt length fields produce
/// [`CodError::IndexCorrupt`] instead of panics or oversized allocations.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> CodResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(corrupt(format!(
                "truncated while reading {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u32(&mut self, what: &str) -> CodResult<u32> {
        let s = self.take(4, what)?;
        let Ok(arr) = <[u8; 4]>::try_from(s) else {
            unreachable!("take returned exactly 4 bytes")
        };
        Ok(u32::from_le_bytes(arr))
    }

    fn read_u64(&mut self, what: &str) -> CodResult<u64> {
        let s = self.take(8, what)?;
        let Ok(arr) = <[u8; 8]>::try_from(s) else {
            unreachable!("take returned exactly 8 bytes")
        };
        Ok(u64::from_le_bytes(arr))
    }

    /// Validates that a declared element count fits in the bytes left.
    fn check_count(&self, count: u64, elem_bytes: usize, what: &str) -> CodResult<usize> {
        let fits = (self.remaining() / elem_bytes.max(1)) as u64;
        if count > fits {
            return Err(corrupt(format!(
                "{what} declares {count} elements but only {fits} fit in the remaining bytes"
            )));
        }
        Ok(count as usize)
    }
}

/// Reads a hierarchy + HIMOR index pair written by [`save_index`] (v2) or
/// by older releases (v1, read-only).
pub fn load_index(path: &Path) -> CodResult<(Dendrogram, HimorIndex)> {
    let bytes = std::fs::read(path)?;
    load_index_bytes(&bytes)
}

/// Reads a CODX image from an arbitrary reader. Exposed primarily so tests
/// can inject read failures; a failing reader surfaces as [`CodError::Io`],
/// never a panic.
pub fn read_index_from<R: std::io::Read>(r: &mut R) -> CodResult<(Dendrogram, HimorIndex)> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    load_index_bytes(&bytes)
}

/// Parses an in-memory CODX image. Exposed for fault-injection tests.
pub fn load_index_bytes(bytes: &[u8]) -> CodResult<(Dendrogram, HimorIndex)> {
    let mut c = Cursor::new(bytes);
    let magic = c.take(4, "magic")?;
    if magic != MAGIC {
        return Err(corrupt("bad magic; not a COD index file"));
    }
    let version = c.read_u32("version")?;
    match version {
        V1 => parse_body(&mut c, false),
        VERSION => parse_v2(&mut c, bytes.len()),
        // v3 fallback: parse the out-of-core layout eagerly (views into a
        // private owned buffer) and clone out the pair this API promises.
        // Zero-copy v3 serving goes through `codx::MappedArtifacts`.
        V3 => {
            let arts = crate::codx::MappedArtifacts::from_vec(bytes.to_vec())?;
            let hier = arts.hierarchy()?;
            let index = arts.himor()?;
            Ok((hier.dendro.clone(), (*index).clone()))
        }
        other => Err(corrupt(format!(
            "unsupported version {other} (expected {V1}, {VERSION} or {V3})"
        ))),
    }
}

fn parse_v2(c: &mut Cursor<'_>, file_len: usize) -> CodResult<(Dendrogram, HimorIndex)> {
    // The footer must agree with the actual file length before anything
    // else is trusted: it catches corrupted section lengths that would
    // otherwise shift every later field.
    if file_len < 8 {
        return Err(corrupt("file too short for the total-length footer"));
    }
    let Ok(footer) = <[u8; 8]>::try_from(&c.bytes[file_len - 8..]) else {
        unreachable!("slice of a length-8 range")
    };
    let total = u64::from_le_bytes(footer);
    if total != file_len as u64 {
        return Err(corrupt(format!(
            "total-length footer says {total} bytes but the file has {file_len}"
        )));
    }

    let hier = read_section(c, "hierarchy")?;
    let ranks = read_section(c, "ranks")?;

    // Both sections parsed; only the footer may remain.
    if c.remaining() != 8 {
        return Err(corrupt(format!(
            "{} bytes left between the sections and the footer (expected 8)",
            c.remaining()
        )));
    }

    // Re-parse the validated payloads through the shared body reader.
    let mut body = Vec::with_capacity(hier.len() + ranks.len());
    body.extend_from_slice(hier);
    body.extend_from_slice(ranks);
    let mut bc = Cursor::new(&body);
    parse_body(&mut bc, true)
}

/// Reads one `len u64 | payload | crc32 u32` section, verifying both the
/// declared length against the remaining bytes and the checksum.
fn read_section<'a>(c: &mut Cursor<'a>, name: &str) -> CodResult<&'a [u8]> {
    let len = c.read_u64(&format!("{name} section length"))?;
    // The payload must leave room for its own CRC and the footer.
    let avail = c.remaining().saturating_sub(4 + 8);
    if len > avail as u64 {
        return Err(corrupt(format!(
            "{name} section declares {len} bytes but only {avail} are available"
        )));
    }
    let payload = c.take(len as usize, name)?;
    let stored = c.read_u32(&format!("{name} checksum"))?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(corrupt(format!(
            "{name} section checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(payload)
}

/// Parses `num_leaves | merges | theta | rank rows` — the shared layout of
/// the v1 body and the concatenated v2 section payloads. When `exact` is
/// set, trailing bytes are an error (v2 payload lengths are authoritative).
fn parse_body(c: &mut Cursor<'_>, exact: bool) -> CodResult<(Dendrogram, HimorIndex)> {
    let n64 = c.read_u64("leaf count")?;
    if n64 == 0 {
        return Err(corrupt("empty hierarchy"));
    }
    let n = c.check_count(n64 - 1, 8, "merge list")? + 1;
    let mut merges = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        let a = c.read_u32("merge")?;
        let b = c.read_u32("merge")?;
        // Reject absurd ids early with a positional message; the full
        // structural validation happens in try_from_merges below.
        let limit = (n + i) as u32;
        if a >= limit || b >= limit {
            return Err(corrupt(format!("merge {i} references future vertex")));
        }
        merges.push(Merge { a, b });
    }
    let dendro = Dendrogram::try_from_merges(n, &merges)
        .map_err(|e| corrupt(format!("invalid hierarchy: {e}")))?;

    let theta = c.read_u64("theta")? as usize;
    let mut ranks = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let len64 = c.read_u32("rank row length")? as u64;
        let expected = dendro.root_path(v).len();
        if len64 != expected as u64 {
            return Err(corrupt(format!(
                "node {v}: {len64} ranks stored but the path has {expected} communities"
            )));
        }
        let len = c.check_count(len64, 4, "rank row")?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(c.read_u32("rank")?);
        }
        ranks.push(row);
    }
    if exact && c.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the rank table",
            c.remaining()
        )));
    }
    Ok((dendro, HimorIndex::from_raw(ranks, theta)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recluster::build_hierarchy;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{LcaIndex, Linkage};
    use cod_influence::Model;
    use rand::prelude::*;
    use std::path::PathBuf;

    /// Unique-per-test temp path, removed when the guard drops.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let seq = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
            Self(std::env::temp_dir().join(format!(
                "cod_persist_{tag}_{}_{seq}.codx",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn setup() -> (cod_graph::Csr, Dendrogram, HimorIndex) {
        let mut b = GraphBuilder::new(10);
        for v in 1..6u32 {
            b.add_edge(0, v);
        }
        for v in 7..10u32 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        let g = b.build();
        let dendro = build_hierarchy(&g, Linkage::Average);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(50);
        let index = HimorIndex::build(&g, Model::WeightedCascade, &dendro, &lca, 50, &mut rng);
        (g, dendro, index)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (_, dendro, index) = setup();
        let path = TempPath::new("round_trip");
        save_index(&path.0, &dendro, &index).unwrap();
        let (d2, i2) = load_index(&path.0).unwrap();
        assert_eq!(d2.num_leaves(), dendro.num_leaves());
        assert_eq!(i2.theta(), index.theta());
        for v in 0..10u32 {
            assert_eq!(d2.root_path(v), dendro.root_path(v));
            assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        }
    }

    #[test]
    fn queries_work_after_reload() {
        let (_, dendro, index) = setup();
        let path = TempPath::new("query");
        save_index(&path.0, &dendro, &index).unwrap();
        let (d2, i2) = load_index(&path.0).unwrap();
        assert_eq!(
            i2.largest_top_k(&d2, 0, None, 1),
            index.largest_top_k(&dendro, 0, None, 1)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let path = TempPath::new("bad_magic");
        std::fs::write(&path.0, b"NOPE....").unwrap();
        match load_index(&path.0) {
            Err(CodError::IndexCorrupt(m)) => assert!(m.contains("magic")),
            other => panic!("expected IndexCorrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let (_, dendro, index) = setup();
        let path = TempPath::new("trunc");
        save_index(&path.0, &dendro, &index).unwrap();
        let bytes = std::fs::read(&path.0).unwrap();
        for keep in [bytes.len() / 2, 3, 11, bytes.len() - 1] {
            std::fs::write(&path.0, &bytes[..keep]).unwrap();
            assert!(
                matches!(load_index(&path.0), Err(CodError::IndexCorrupt(_))),
                "truncation to {keep} bytes must be IndexCorrupt"
            );
        }
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let path = TempPath::new("missing");
        assert!(matches!(load_index(&path.0), Err(CodError::Io(_))));
    }

    #[test]
    fn detects_payload_corruption_via_checksum() {
        let (_, dendro, index) = setup();
        let mut bytes = serialize_index(&dendro, &index).unwrap();
        // Flip one bit inside the hierarchy payload (after magic, version
        // and the section length).
        bytes[20] ^= 0x01;
        match load_index_bytes(&bytes) {
            Err(CodError::IndexCorrupt(m)) => {
                assert!(m.contains("checksum") || m.contains("future vertex"), "{m}")
            }
            other => panic!("expected IndexCorrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn detects_footer_mismatch() {
        let (_, dendro, index) = setup();
        let mut bytes = serialize_index(&dendro, &index).unwrap();
        let extra = bytes.len();
        bytes.push(0); // appended garbage shifts the real length
        match load_index_bytes(&bytes) {
            Err(CodError::IndexCorrupt(m)) => assert!(m.contains("footer"), "{m}"),
            other => panic!(
                "expected IndexCorrupt, got {:?} (len {extra})",
                other.map(|_| ())
            ),
        }
    }

    #[test]
    fn huge_declared_counts_error_instead_of_allocating() {
        // A v1-style header that declares u64::MAX leaves must fail fast.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        match load_index_bytes(&bytes) {
            Err(CodError::IndexCorrupt(m)) => assert!(m.contains("elements"), "{m}"),
            other => panic!("expected IndexCorrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn v1_files_remain_loadable() {
        let (_, dendro, index) = setup();
        // Hand-write the v1 layout (what the previous release produced).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let n = dendro.num_leaves();
        bytes.extend_from_slice(&(n as u64).to_le_bytes());
        for m in dendro.merges() {
            bytes.extend_from_slice(&m.a.to_le_bytes());
            bytes.extend_from_slice(&m.b.to_le_bytes());
        }
        bytes.extend_from_slice(&(index.theta() as u64).to_le_bytes());
        for v in 0..n as u32 {
            let row = index.ranks_of(v);
            bytes.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for &r in row {
                bytes.extend_from_slice(&r.to_le_bytes());
            }
        }
        let (d2, i2) = load_index_bytes(&bytes).unwrap();
        assert_eq!(d2.num_leaves(), n);
        for v in 0..n as u32 {
            assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        }
    }

    #[test]
    fn failed_save_leaves_previous_index_intact() {
        let (_, dendro, index) = setup();
        let dir_guard = TempPath::new("atomic_dir");
        let dir = &dir_guard.0;
        std::fs::create_dir_all(dir).unwrap();
        // A target name just under NAME_MAX: creating the target works, but
        // the longer temp-sibling name cannot be created, so the save fails
        // *before* touching the target — even when running as root, which
        // ignores directory permission bits.
        let target = dir.join(format!("{}.codx", "x".repeat(245)));
        let original = serialize_index(&dendro, &index).unwrap();
        std::fs::write(&target, &original).unwrap();

        let result = save_index(&target, &dendro, &index);
        assert!(matches!(result, Err(CodError::Io(_))), "{result:?}");
        assert_eq!(
            std::fs::read(&target).unwrap(),
            original,
            "target untouched"
        );
        assert!(load_index(&target).is_ok());
        // No stray temp files either.
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&target).ok();
        std::fs::remove_dir(dir).ok();
    }
}
