//! On-disk persistence for the hierarchy and the HIMOR index.
//!
//! The HIMOR index is built once per graph (Θ = θ·|V| RR graphs, Table II
//! reports minutes on the large datasets) and reused across queries and
//! sessions — so a deployment wants it on disk. The format is a simple
//! versioned little-endian binary:
//!
//! ```text
//! magic "CODX" | version u32 | num_leaves u64
//! | merges: (a u32, b u32) × (num_leaves - 1)
//! | theta u64
//! | per node: len u32, ranks u32 × len
//! ```
//!
//! No external serialization crate is needed (see `DESIGN.md` §6).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use cod_hierarchy::{Dendrogram, Merge};

use crate::himor::HimorIndex;

const MAGIC: &[u8; 4] = b"CODX";
const VERSION: u32 = 1;

/// Errors from index persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file error.
    Io(std::io::Error),
    /// Not a COD index file, or an unsupported version.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes the hierarchy and its HIMOR index to `path`.
pub fn save_index(
    path: &Path,
    dendro: &Dendrogram,
    index: &HimorIndex,
) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let n = dendro.num_leaves();
    if index.num_nodes() != n {
        return Err(PersistError::Format(format!(
            "index covers {} nodes but the hierarchy has {n} leaves",
            index.num_nodes()
        )));
    }
    w.write_all(&(n as u64).to_le_bytes())?;
    for m in dendro.merges() {
        w.write_all(&m.a.to_le_bytes())?;
        w.write_all(&m.b.to_le_bytes())?;
    }
    w.write_all(&(index.theta() as u64).to_le_bytes())?;
    for v in 0..n as u32 {
        let ranks = index.ranks_of(v);
        w.write_all(&(ranks.len() as u32).to_le_bytes())?;
        for &r in ranks {
            w.write_all(&r.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a hierarchy + HIMOR index pair written by [`save_index`].
pub fn load_index(path: &Path) -> Result<(Dendrogram, HimorIndex), PersistError> {
    let f = std::fs::File::open(path)?;
    let mut r = BufReader::new(f);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format("bad magic; not a COD index file".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let n = read_u64(&mut r)? as usize;
    if n == 0 {
        return Err(PersistError::Format("empty hierarchy".into()));
    }
    let mut merges = Vec::with_capacity(n - 1);
    for _ in 0..n - 1 {
        let a = read_u32(&mut r)?;
        let b = read_u32(&mut r)?;
        merges.push(Merge { a, b });
    }
    // from_merges validates tree structure (panics on malformed input);
    // guard against absurd ids first so corrupt files error out instead.
    for (i, m) in merges.iter().enumerate() {
        let limit = (n + i) as u32;
        if m.a >= limit || m.b >= limit {
            return Err(PersistError::Format(format!("merge {i} references future vertex")));
        }
    }
    let dendro = Dendrogram::from_merges(n, &merges);
    let theta = read_u64(&mut r)? as usize;
    let mut ranks = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let len = read_u32(&mut r)? as usize;
        let expected = dendro.root_path(v).len();
        if len != expected {
            return Err(PersistError::Format(format!(
                "node {v}: {len} ranks stored but the path has {expected} communities"
            )));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(read_u32(&mut r)?);
        }
        ranks.push(row);
    }
    Ok((dendro, HimorIndex::from_raw(ranks, theta)))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recluster::build_hierarchy;
    use cod_graph::GraphBuilder;
    use cod_hierarchy::{LcaIndex, Linkage};
    use cod_influence::Model;
    use rand::prelude::*;

    fn setup() -> (cod_graph::Csr, Dendrogram, HimorIndex) {
        let mut b = GraphBuilder::new(10);
        for v in 1..6u32 {
            b.add_edge(0, v);
        }
        for v in 7..10u32 {
            b.add_edge(6, v);
        }
        b.add_edge(5, 6);
        let g = b.build();
        let dendro = build_hierarchy(&g, Linkage::Average);
        let lca = LcaIndex::new(&dendro);
        let mut rng = SmallRng::seed_from_u64(50);
        let index = HimorIndex::build(&g, Model::WeightedCascade, &dendro, &lca, 50, &mut rng);
        (g, dendro, index)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (_, dendro, index) = setup();
        let path = std::env::temp_dir().join("cod_persist_round_trip.codx");
        save_index(&path, &dendro, &index).unwrap();
        let (d2, i2) = load_index(&path).unwrap();
        assert_eq!(d2.num_leaves(), dendro.num_leaves());
        assert_eq!(i2.theta(), index.theta());
        for v in 0..10u32 {
            assert_eq!(d2.root_path(v), dendro.root_path(v));
            assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn queries_work_after_reload() {
        let (_, dendro, index) = setup();
        let path = std::env::temp_dir().join("cod_persist_query.codx");
        save_index(&path, &dendro, &index).unwrap();
        let (d2, i2) = load_index(&path).unwrap();
        assert_eq!(
            i2.largest_top_k(&d2, 0, None, 1),
            index.largest_top_k(&dendro, 0, None, 1)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = std::env::temp_dir().join("cod_persist_bad.codx");
        std::fs::write(&path, b"NOPE....").unwrap();
        match load_index(&path) {
            Err(PersistError::Format(m)) => assert!(m.contains("magic")),
            Err(other) => panic!("expected format error, got {other:?}"),
            Ok(_) => panic!("expected format error, got success"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let (_, dendro, index) = setup();
        let path = std::env::temp_dir().join("cod_persist_trunc.codx");
        save_index(&path, &dendro, &index).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_index(&path), Err(PersistError::Io(_))));
        std::fs::remove_file(&path).ok();
    }
}
