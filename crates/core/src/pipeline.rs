//! Method facades: the COD variants evaluated in the paper's §V.
//!
//! * [`Codu`] — non-attributed hierarchy + compressed evaluation;
//! * [`Codr`] — global reclustering of `g_ℓ` per query + compressed
//!   evaluation;
//! * [`CodlMinus`] — LORE local reclustering + compressed evaluation over
//!   the composed chain (no index);
//! * [`Codl`] — LORE + HIMOR index (Algorithm 3), the fully optimized
//!   method.
//!
//! All variants share one [`CodConfig`] and return [`CodAnswer`]s carrying
//! the characteristic community's members plus diagnostics.

use cod_graph::{AttrId, AttributedGraph, NodeId};
use cod_hierarchy::{Dendrogram, LcaIndex, Linkage, VertexId};
use cod_influence::{Model, Parallelism};
use rand::prelude::*;

use crate::chain::{Chain, ComposedChain, DendroChain, SubgraphChain};
use crate::compressed::{compressed_cod_budgeted, compressed_cod_budgeted_seeded};
use crate::error::{CodError, CodResult};
use crate::himor::HimorIndex;
use crate::lore::select_recluster_community;
use crate::recluster::{build_hierarchy, global_recluster, local_recluster};

/// Shared configuration for all COD variants (paper §V-A defaults).
#[derive(Clone, Copy, Debug)]
pub struct CodConfig {
    /// Required influence rank `k` (default 5).
    pub k: usize,
    /// RR graphs per node `θ` (default 10).
    pub theta: usize,
    /// Extra weight `β` on query-attributed edges in `g_ℓ` (default 1).
    pub beta: f64,
    /// Linkage function for hierarchical clustering.
    pub linkage: Linkage,
    /// Diffusion model (default weighted cascade).
    pub model: Model,
    /// Optional cap on the *total* RR samples one query may draw. When the
    /// full `θ·|universe|` exceeds it, evaluation runs with fewer samples
    /// and the answer comes back flagged [`CodAnswer::uncertain`] instead
    /// of failing. `None` (the default) means unbounded.
    pub budget: Option<usize>,
    /// Execution policy for RR sampling and index construction.
    /// [`Parallelism::Serial`] (the default) keeps the legacy behaviour:
    /// samples are drawn sequentially from the caller's RNG stream.
    /// [`Parallelism::Auto`] and [`Parallelism::Threads`] switch to
    /// deterministic per-sample seed derivation: one master seed is drawn
    /// from the caller's RNG and every sample index gets its own derived
    /// RNG, so answers are bit-identical for every thread count.
    pub parallelism: Parallelism,
}

impl Default for CodConfig {
    fn default() -> Self {
        Self {
            k: 5,
            theta: 10,
            beta: 1.0,
            linkage: Linkage::Average,
            model: Model::WeightedCascade,
            budget: None,
            parallelism: Parallelism::Serial,
        }
    }
}

/// Validates the user-supplied query parameters against `g` and `cfg`
/// before any work happens. Every facade calls this first, so the
/// algorithm internals can assume well-formed input.
fn validate_query(
    g: &AttributedGraph,
    cfg: &CodConfig,
    q: NodeId,
    attr: Option<AttrId>,
) -> CodResult<()> {
    let n = g.num_nodes();
    if (q as usize) >= n {
        return Err(CodError::InvalidQuery(format!(
            "query node {q} out of range (graph has {n} nodes)"
        )));
    }
    if let Some(a) = attr {
        let m = g.num_attrs();
        if (a as usize) >= m {
            return Err(CodError::InvalidQuery(format!(
                "unknown attribute id {a} (graph has {m} interned attributes)"
            )));
        }
    }
    if cfg.k == 0 {
        return Err(CodError::InvalidQuery(
            "top-k rank threshold k must be at least 1".into(),
        ));
    }
    if cfg.theta == 0 {
        return Err(CodError::InvalidQuery(
            "per-node sample count theta must be at least 1".into(),
        ));
    }
    Ok(())
}

/// How a query was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// Straight from the HIMOR index (Algorithm 3, lines 1–2).
    Index,
    /// By compressed COD evaluation (Algorithm 1).
    Compressed,
}

/// A characteristic community answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodAnswer {
    /// Members of `C*(q)`, sorted ascending.
    pub members: Vec<NodeId>,
    /// Estimated 1-based influence rank of `q` in `C*(q)`.
    pub rank: usize,
    /// Where the answer came from.
    pub source: AnswerSource,
    /// Best-effort flag: the winning level's top-k verdict could flip under
    /// sampling noise, or a sample budget truncated the evaluation.
    pub uncertain: bool,
}

impl CodAnswer {
    /// `|C*|`.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// CODU: compressed evaluation over the non-attributed hierarchy `T`.
pub struct Codu<'g> {
    g: &'g AttributedGraph,
    cfg: CodConfig,
    dendro: Dendrogram,
    lca: LcaIndex,
}

impl<'g> Codu<'g> {
    /// Builds `T` once; queries reuse it.
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        Self {
            g,
            cfg,
            dendro,
            lca,
        }
    }

    /// The shared non-attributed hierarchy.
    pub fn hierarchy(&self) -> (&Dendrogram, &LcaIndex) {
        (&self.dendro, &self.lca)
    }

    /// Answers a COD query (the query attribute is ignored by CODU).
    pub fn query<R: Rng>(&self, q: NodeId, rng: &mut R) -> CodResult<Option<CodAnswer>> {
        validate_query(self.g, &self.cfg, q, None)?;
        let chain = DendroChain::new(&self.dendro, &self.lca, q)?;
        answer_from_chain(self.g, self.cfg, &chain, q, rng)
    }
}

/// CODR: per-query global reclustering of the attribute-weighted `g_ℓ`.
pub struct Codr<'g> {
    g: &'g AttributedGraph,
    cfg: CodConfig,
}

impl<'g> Codr<'g> {
    /// A CODR instance (no precomputation — reclustering is per query).
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        Self { g, cfg }
    }

    /// Answers a COD query for `(q, attr)`.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        validate_query(self.g, &self.cfg, q, Some(attr))?;
        let dendro = global_recluster(self.g, attr, self.cfg.beta, self.cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let chain = DendroChain::new(&dendro, &lca, q)?;
        answer_from_chain(self.g, self.cfg, &chain, q, rng)
    }

    /// The attribute-aware hierarchy CODR would use for `attr` (exposed for
    /// the Fig. 4 skew analysis).
    pub fn hierarchy_for(&self, attr: AttrId) -> Dendrogram {
        global_recluster(self.g, attr, self.cfg.beta, self.cfg.linkage)
    }
}

/// CODL⁻: LORE local reclustering + compressed evaluation, no HIMOR index.
pub struct CodlMinus<'g> {
    g: &'g AttributedGraph,
    cfg: CodConfig,
    dendro: Dendrogram,
    lca: LcaIndex,
}

impl<'g> CodlMinus<'g> {
    /// Builds the reference hierarchy `T` once.
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        Self {
            g,
            cfg,
            dendro,
            lca,
        }
    }

    /// Answers a COD query for `(q, attr)` over the composed chain
    /// `H_ℓ(q)`.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        validate_query(self.g, &self.cfg, q, Some(attr))?;
        match select_recluster_community(self.g, &self.dendro, &self.lca, q, attr) {
            None => {
                // No attribute signal on the path: evaluate T directly.
                let chain = DendroChain::new(&self.dendro, &self.lca, q)?;
                answer_from_chain(self.g, self.cfg, &chain, q, rng)
            }
            Some(choice) => {
                let members = self.dendro.members_sorted(choice.vertex);
                let (sub, sd) =
                    local_recluster(self.g, &members, attr, self.cfg.beta, self.cfg.linkage);
                let slca = LcaIndex::new(&sd);
                let lower = SubgraphChain::new(&sub, &sd, &slca, q, true)?;
                let chain = ComposedChain::new(lower, &self.dendro, &self.lca, choice.vertex)?;
                answer_from_chain(self.g, self.cfg, &chain, q, rng)
            }
        }
    }
}

/// CODL: LORE + the HIMOR index (the paper's fully optimized method).
pub struct Codl<'g> {
    g: &'g AttributedGraph,
    cfg: CodConfig,
    dendro: Dendrogram,
    lca: LcaIndex,
    index: HimorIndex,
}

impl<'g> Codl<'g> {
    /// Builds `T` and the HIMOR index (`Θ = θ·|V|` RR graphs).
    pub fn new<R: Rng>(g: &'g AttributedGraph, cfg: CodConfig, rng: &mut R) -> Self {
        let dendro = build_hierarchy(g.csr(), cfg.linkage);
        let lca = LcaIndex::new(&dendro);
        let index = if cfg.parallelism.is_seeded() {
            HimorIndex::build_seeded(
                g.csr(),
                cfg.model,
                &dendro,
                &lca,
                cfg.theta,
                rng.next_u64(),
                cfg.parallelism,
            )
        } else {
            HimorIndex::build(g.csr(), cfg.model, &dendro, &lca, cfg.theta, rng)
        };
        Self {
            g,
            cfg,
            dendro,
            lca,
            index,
        }
    }

    /// Reuses a prebuilt hierarchy and index (for benchmarks that amortize
    /// construction).
    pub fn from_parts(
        g: &'g AttributedGraph,
        cfg: CodConfig,
        dendro: Dendrogram,
        lca: LcaIndex,
        index: HimorIndex,
    ) -> Self {
        Self {
            g,
            cfg,
            dendro,
            lca,
            index,
        }
    }

    /// The HIMOR index.
    pub fn index(&self) -> &HimorIndex {
        &self.index
    }

    /// The reference hierarchy.
    pub fn hierarchy(&self) -> (&Dendrogram, &LcaIndex) {
        (&self.dendro, &self.lca)
    }

    /// Answers a COD query for `(q, attr)` — Algorithm 3.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        validate_query(self.g, &self.cfg, q, Some(attr))?;
        let choice = select_recluster_community(self.g, &self.dendro, &self.lca, q, attr);
        let floor: Option<VertexId> = choice.map(|c| c.vertex);
        // Lines 1–2: answer from the index if an ancestor of C_ℓ qualifies.
        if let Some(c) = self.index.largest_top_k(&self.dendro, q, floor, self.cfg.k) {
            let path = self.dendro.root_path(q);
            let Some(j) = path.iter().position(|&v| v == c) else {
                unreachable!("largest_top_k only returns vertices on q's root path")
            };
            return Ok(Some(CodAnswer {
                members: self.dendro.members_sorted(c),
                rank: self.index.ranks_of(q)[j] as usize,
                source: AnswerSource::Index,
                uncertain: false,
            }));
        }
        // Line 3: compressed evaluation inside the reclustered C_ℓ.
        let Some(choice) = choice else {
            return Ok(None);
        };
        let members = self.dendro.members_sorted(choice.vertex);
        let (sub, sd) = local_recluster(self.g, &members, attr, self.cfg.beta, self.cfg.linkage);
        let slca = LcaIndex::new(&sd);
        // The subgraph root (C_ℓ itself) is excluded: the index already
        // ruled it out.
        let chain = SubgraphChain::new(&sub, &sd, &slca, q, false)?;
        answer_from_chain(self.g, self.cfg, &chain, q, rng)
    }
}

/// Runs compressed evaluation over `chain` and packages the answer.
///
/// Under a seeded [`CodConfig::parallelism`] policy, exactly one `u64` is
/// drawn from `rng` as the master seed — the same draw for every thread
/// count — and all sampling randomness is derived from it per index.
pub(crate) fn answer_from_chain<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    chain: &(impl Chain + Sync),
    q: NodeId,
    rng: &mut R,
) -> CodResult<Option<CodAnswer>> {
    if chain.is_empty() {
        return Ok(None);
    }
    let out = if cfg.parallelism.is_seeded() {
        compressed_cod_budgeted_seeded(
            g.csr(),
            cfg.model,
            chain,
            q,
            cfg.k,
            cfg.theta,
            cfg.budget,
            rng.next_u64(),
            cfg.parallelism,
        )?
    } else {
        compressed_cod_budgeted(
            g.csr(),
            cfg.model,
            chain,
            q,
            cfg.k,
            cfg.theta,
            cfg.budget,
            rng,
        )?
    };
    let Some(level) = out.best_level else {
        return Ok(None);
    };
    Ok(Some(CodAnswer {
        members: chain.members(level),
        rank: out.ranks[level],
        source: AnswerSource::Compressed,
        uncertain: out.truncated || out.uncertain[level],
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// Two attribute-homogeneous triangles bridged; hubs 0 and 3.
    fn toy() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 5),
            (2, 3),
            (0, 6),
            (0, 7),
            (6, 7),
        ] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let c = i.intern("B");
        let lists = vec![
            vec![a],
            vec![a],
            vec![a],
            vec![c],
            vec![c],
            vec![c],
            vec![a],
            vec![a],
        ];
        AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), i)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 120,
            ..CodConfig::default()
        }
    }

    #[test]
    fn codu_finds_some_community_for_a_hub() {
        let g = toy();
        let codu = Codu::new(&g, cfg());
        let mut rng = SmallRng::seed_from_u64(31);
        let ans = codu.query(0, &mut rng).unwrap().expect("hub has a community");
        assert!(ans.members.contains(&0));
        assert!(ans.rank <= 2);
        assert_eq!(ans.source, AnswerSource::Compressed);
    }

    #[test]
    fn codr_and_codl_minus_accept_attributes() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(32);
        let codr = Codr::new(&g, cfg());
        let a = codr.query(0, 0, &mut rng).unwrap();
        assert!(a.is_some());
        let cm = CodlMinus::new(&g, cfg());
        let b = cm.query(0, 0, &mut rng).unwrap();
        assert!(b.is_some());
    }

    #[test]
    fn codl_index_answers_hub_queries() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(33);
        let codl = Codl::new(&g, cfg(), &mut rng);
        let ans = codl.query(0, 0, &mut rng).unwrap().expect("hub answered");
        assert!(ans.members.contains(&0));
        // The hub is globally influential, so the index should answer.
        assert_eq!(ans.source, AnswerSource::Index);
        assert!(!ans.uncertain);
    }

    #[test]
    fn all_variants_return_communities_containing_q() {
        let g = toy();
        let c = cfg();
        let mut rng = SmallRng::seed_from_u64(34);
        let codu = Codu::new(&g, c);
        let codr = Codr::new(&g, c);
        let cm = CodlMinus::new(&g, c);
        let codl = Codl::new(&g, c, &mut rng);
        for q in 0..8u32 {
            let attr = g.node_attrs(q)[0];
            for ans in [
                codu.query(q, &mut rng).unwrap(),
                codr.query(q, attr, &mut rng).unwrap(),
                cm.query(q, attr, &mut rng).unwrap(),
                codl.query(q, attr, &mut rng).unwrap(),
            ]
            .into_iter()
            .flatten()
            {
                assert!(ans.members.contains(&q), "q={q} missing from C*");
                assert!(ans.members.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn boundary_rejects_bad_parameters_without_panicking() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(35);
        let codu = Codu::new(&g, cfg());
        // Node id out of range.
        let err = codu.query(99, &mut rng).unwrap_err();
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        // Unknown attribute id.
        let codr = Codr::new(&g, cfg());
        let err = codr.query(0, 77, &mut rng).unwrap_err();
        assert!(err.to_string().contains("unknown attribute"), "{err}");
        // k == 0 and theta == 0.
        for bad in [
            CodConfig { k: 0, ..cfg() },
            CodConfig { theta: 0, ..cfg() },
        ] {
            let codu = Codu::new(&g, bad);
            let err = codu.query(0, &mut rng).unwrap_err();
            assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        }
    }

    #[test]
    fn tight_budget_yields_best_effort_uncertain_answer() {
        let g = toy();
        let tight = CodConfig {
            budget: Some(8),
            ..cfg()
        };
        let mut rng = SmallRng::seed_from_u64(36);
        let codu = Codu::new(&g, tight);
        // 8 total samples instead of θ·|V| = 960: the query still answers,
        // but must carry the best-effort flag.
        if let Some(ans) = codu.query(0, &mut rng).unwrap() {
            assert!(ans.uncertain, "truncated evaluation must be flagged");
        }
        // A zero budget is a hard error, not a silent empty answer.
        let starved = CodConfig {
            budget: Some(0),
            ..cfg()
        };
        let codu = Codu::new(&g, starved);
        let err = codu.query(0, &mut rng).unwrap_err();
        assert!(matches!(err, CodError::BudgetExhausted { .. }), "{err}");
    }
}
