//! Method facades: the COD variants evaluated in the paper's §V.
//!
//! * [`Codu`] — non-attributed hierarchy + compressed evaluation;
//! * [`Codr`] — global reclustering of `g_ℓ` per query + compressed
//!   evaluation;
//! * [`CodlMinus`] — LORE local reclustering + compressed evaluation over
//!   the composed chain (no index);
//! * [`Codl`] — LORE + HIMOR index (Algorithm 3), the fully optimized
//!   method.
//!
//! All variants share one [`CodConfig`] and return [`CodAnswer`]s carrying
//! the characteristic community's members plus diagnostics.
//!
//! Since the serving-layer refactor the facades are thin, API-stable
//! wrappers over [`CodEngine`]: each owns an engine restricted to one
//! [`Method`] and answers are bit-identical to what the pre-engine facades
//! produced. New code should use [`CodEngine`] directly — it serves all
//! four variants from one set of shared artifacts, caches reclustered
//! hierarchies across queries and offers a batch API; the facades remain
//! for the experiment harness and for one-method callers.

use std::marker::PhantomData;
use std::sync::Arc;

use cod_graph::{AttrId, AttributedGraph, NodeId};
use cod_hierarchy::{Dendrogram, Hierarchy, LcaIndex, Linkage};
use cod_influence::{CancelToken, Model, Parallelism};
use rand::prelude::*;

use crate::chain::Chain;
use crate::compressed::{compressed_cod_budgeted, compressed_cod_budgeted_seeded};
use crate::engine::{CodEngine, Method, Query};
use crate::error::{CodError, CodResult};
use crate::himor::HimorIndex;

/// Per-query resource limits enforced by cooperative cancellation.
///
/// All limits default to `None` (unlimited), and a limit that never
/// triggers is invisible: the cancellation checkpoints never touch an RNG,
/// so answers are bit-identical to running without limits (asserted by the
/// seed-replay suite). When a limit fires mid-query the engine degrades
/// down the method ladder (CODL → CODL⁻ → CODU) and flags the answer via
/// [`CodAnswer::degraded`]; if no rung can answer, the query fails with
/// [`CodError::DeadlineExceeded`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Wall-clock deadline per query, measured from when the engine starts
    /// planning it.
    pub deadline: Option<std::time::Duration>,
    /// Cap on RR-graph edges traversed while sampling for one query.
    pub max_rr_edges: Option<u64>,
    /// Cap on the resident bytes of one query's scratch workspace.
    pub max_memory_bytes: Option<usize>,
}

impl QueryLimits {
    /// Whether every limit is unset (the default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rr_edges.is_none() && self.max_memory_bytes.is_none()
    }

    /// A fresh token enforcing these limits, linked to `parent` so an
    /// engine-wide kill switch (the serve tier's drain hook) reaches this
    /// query too; `None` when unlimited — the unlimited serving path
    /// carries no token at all.
    pub(crate) fn token_with_parent(&self, parent: &CancelToken) -> Option<CancelToken> {
        if self.is_unlimited() {
            return None;
        }
        Some(CancelToken::with_parent(
            self.deadline,
            self.max_rr_edges,
            self.max_memory_bytes,
            parent,
        ))
    }
}

/// Shared configuration for all COD variants (paper §V-A defaults).
#[derive(Clone, Copy, Debug)]
pub struct CodConfig {
    /// Required influence rank `k` (default 5).
    pub k: usize,
    /// RR graphs per node `θ` (default 10).
    pub theta: usize,
    /// Extra weight `β` on query-attributed edges in `g_ℓ` (default 1).
    pub beta: f64,
    /// Linkage function for hierarchical clustering.
    pub linkage: Linkage,
    /// Diffusion model (default weighted cascade).
    pub model: Model,
    /// Optional cap on the *total* RR samples one query may draw. When the
    /// full `θ·|universe|` exceeds it, evaluation runs with fewer samples
    /// and the answer comes back flagged [`CodAnswer::uncertain`] instead
    /// of failing. `None` (the default) means unbounded.
    pub budget: Option<usize>,
    /// Execution policy for RR sampling and index construction.
    /// [`Parallelism::Serial`] (the default) keeps the legacy behaviour:
    /// samples are drawn sequentially from the caller's RNG stream.
    /// [`Parallelism::Auto`] and [`Parallelism::Threads`] switch to
    /// deterministic per-sample seed derivation: one master seed is drawn
    /// from the caller's RNG and every sample index gets its own derived
    /// RNG, so answers are bit-identical for every thread count.
    pub parallelism: Parallelism,
    /// Arm per-phase wall-clock timers and attach a
    /// [`crate::telemetry::QueryTrace`] to every answer
    /// ([`CodAnswer::trace`]). Off by default: the evaluation path then
    /// performs zero clock reads. Event *counters* are collected either
    /// way, and neither mode touches the RNG — answers are bit-identical
    /// with tracing on or off (asserted by the seed-replay suite).
    pub trace: bool,
    /// Per-query deadline and resource caps ([`QueryLimits`]); unlimited by
    /// default. Limits that never trigger leave answers bit-identical.
    pub limits: QueryLimits,
    /// Admission-control cap on concurrent [`CodEngine::query_batch`]
    /// calls. When the cap is reached, further calls are shed immediately
    /// with the retriable [`CodError::Overloaded`] instead of queueing.
    /// `None` (the default) admits everything.
    pub max_inflight: Option<usize>,
    /// Serve compressed evaluations from the engine's cross-query shared
    /// RR-pool cache ([`crate::pool`]): queries on the same
    /// `(attribute, universe)` key re-fold cached RR graphs instead of
    /// resampling. Off by default because pooled sampling is key-derived —
    /// answers are deterministic and identical warm or cold, but not
    /// bit-identical to the unpooled paths' caller-RNG streams.
    pub pool: bool,
    /// Byte budget of the shared RR-pool cache before least-recently-used
    /// pools are evicted ([`crate::pool::DEFAULT_POOL_BUDGET_BYTES`] by
    /// default). Only consulted when [`CodConfig::pool`] is on.
    pub pool_budget_bytes: usize,
}

impl Default for CodConfig {
    fn default() -> Self {
        Self {
            k: 5,
            theta: 10,
            beta: 1.0,
            linkage: Linkage::Average,
            model: Model::WeightedCascade,
            budget: None,
            parallelism: Parallelism::Serial,
            trace: false,
            limits: QueryLimits::default(),
            max_inflight: None,
            pool: false,
            pool_budget_bytes: crate::pool::DEFAULT_POOL_BUDGET_BYTES,
        }
    }
}

/// Validates the user-supplied query parameters against `g` and `cfg`
/// before any work happens. The engine calls this once at its boundary, so
/// the algorithm internals can assume well-formed input.
pub(crate) fn validate_query(
    g: &AttributedGraph,
    cfg: &CodConfig,
    q: NodeId,
    attr: Option<AttrId>,
) -> CodResult<()> {
    let n = g.num_nodes();
    if (q as usize) >= n {
        return Err(CodError::InvalidQuery(format!(
            "query node {q} out of range (graph has {n} nodes)"
        )));
    }
    if let Some(a) = attr {
        let m = g.num_attrs();
        if (a as usize) >= m {
            return Err(CodError::InvalidQuery(format!(
                "unknown attribute id {a} (graph has {m} interned attributes)"
            )));
        }
    }
    if cfg.k == 0 {
        return Err(CodError::InvalidQuery(
            "top-k rank threshold k must be at least 1".into(),
        ));
    }
    if cfg.theta == 0 {
        return Err(CodError::InvalidQuery(
            "per-node sample count theta must be at least 1".into(),
        ));
    }
    Ok(())
}

/// How a query was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// Straight from the HIMOR index (Algorithm 3, lines 1–2).
    Index,
    /// By compressed COD evaluation (Algorithm 1).
    Compressed,
}

/// Whether the engine served a query's reclustered hierarchy from its
/// artifact cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The `(attr, β, linkage)` artifact was already resident.
    Hit,
    /// The artifact was built for this query (and cached for the next).
    Miss,
}

/// A characteristic community answer.
#[derive(Clone, Debug)]
pub struct CodAnswer {
    /// Members of `C*(q)`, sorted ascending.
    pub members: Vec<NodeId>,
    /// Estimated 1-based influence rank of `q` in `C*(q)`.
    pub rank: usize,
    /// Where the answer came from.
    pub source: AnswerSource,
    /// Best-effort flag: the winning level's top-k verdict could flip under
    /// sampling noise, or a sample budget truncated the evaluation.
    pub uncertain: bool,
    /// Set when a [`QueryLimits`] trigger forced the degradation ladder:
    /// the method rung that actually served the answer (equal to the
    /// requested method when the primary rung still answered, lower —
    /// e.g. [`Method::Codu`] for a CODL query — when the engine fell
    /// back). `None` for every answer served without a limit firing;
    /// degraded answers are always also [`CodAnswer::uncertain`].
    pub degraded: Option<Method>,
    /// Engine diagnostic: artifact-cache outcome for the query's
    /// reclustered hierarchy. `None` when no recluster was involved (CODU,
    /// index hits, degenerate LORE) or the answer predates the engine.
    pub cache: Option<CacheOutcome>,
    /// Per-query telemetry (phase durations + counter deltas). Attached by
    /// the engine when [`CodConfig::trace`] is set; `None` otherwise.
    pub trace: Option<crate::telemetry::QueryTrace>,
}

/// Equality deliberately ignores [`CodAnswer::cache`] and
/// [`CodAnswer::trace`]: they describe the serving path, not the answer. A
/// warm-cache answer *is* the cold-cache answer (reclustering is
/// deterministic) and a traced answer *is* the untraced answer, and the
/// equivalence suites assert exactly that with `assert_eq!`.
impl PartialEq for CodAnswer {
    fn eq(&self, other: &Self) -> bool {
        self.members == other.members
            && self.rank == other.rank
            && self.source == other.source
            && self.uncertain == other.uncertain
            && self.degraded == other.degraded
    }
}

impl Eq for CodAnswer {}

impl CodAnswer {
    /// `|C*|`.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// CODU: compressed evaluation over the non-attributed hierarchy `T`.
///
/// Thin wrapper over [`CodEngine`] with [`Method::Codu`]; prefer the engine
/// for new code.
pub struct Codu<'g> {
    engine: CodEngine,
    base: Arc<Hierarchy>,
    _g: PhantomData<&'g AttributedGraph>,
}

impl<'g> Codu<'g> {
    /// Builds `T` once; queries reuse it.
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        let engine = CodEngine::new(g.clone(), cfg);
        let base = engine.base_hierarchy();
        Self {
            engine,
            base,
            _g: PhantomData,
        }
    }

    /// The shared non-attributed hierarchy.
    pub fn hierarchy(&self) -> (&Dendrogram, &LcaIndex) {
        (&self.base.dendro, &self.base.lca)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &CodEngine {
        &self.engine
    }

    /// Answers a COD query (the query attribute is ignored by CODU).
    pub fn query<R: Rng>(&self, q: NodeId, rng: &mut R) -> CodResult<Option<CodAnswer>> {
        self.engine.query(Query::codu(q), rng)
    }
}

/// CODR: per-query global reclustering of the attribute-weighted `g_ℓ`.
///
/// Thin wrapper over [`CodEngine`] with [`Method::Codr`]; prefer the engine
/// for new code. Unlike the pre-engine facade, repeat queries on the same
/// attribute reuse the cached `T_ℓ` (the answers are identical either way).
pub struct Codr<'g> {
    engine: CodEngine,
    _g: PhantomData<&'g AttributedGraph>,
}

impl<'g> Codr<'g> {
    /// A CODR instance (no precomputation — reclustering is per query).
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        Self {
            engine: CodEngine::new(g.clone(), cfg),
            _g: PhantomData,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &CodEngine {
        &self.engine
    }

    /// Answers a COD query for `(q, attr)`.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        self.engine.query(Query::new(q, attr, Method::Codr), rng)
    }

    /// The attribute-aware hierarchy CODR would use for `attr` (exposed for
    /// the Fig. 4 skew analysis).
    pub fn hierarchy_for(&self, attr: AttrId) -> Dendrogram {
        self.engine.global_hierarchy(attr).0.dendro.clone()
    }
}

/// CODL⁻: LORE local reclustering + compressed evaluation, no HIMOR index.
///
/// Thin wrapper over [`CodEngine`] with [`Method::CodlMinus`]; prefer the
/// engine for new code.
pub struct CodlMinus<'g> {
    engine: CodEngine,
    _g: PhantomData<&'g AttributedGraph>,
}

impl<'g> CodlMinus<'g> {
    /// Builds the reference hierarchy `T` once.
    pub fn new(g: &'g AttributedGraph, cfg: CodConfig) -> Self {
        let engine = CodEngine::new(g.clone(), cfg);
        // Eager like the pre-engine facade: construction pays for `T`.
        engine.base_hierarchy();
        Self {
            engine,
            _g: PhantomData,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &CodEngine {
        &self.engine
    }

    /// Answers a COD query for `(q, attr)` over the composed chain
    /// `H_ℓ(q)`.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        self.engine
            .query(Query::new(q, attr, Method::CodlMinus), rng)
    }
}

/// CODL: LORE + the HIMOR index (the paper's fully optimized method).
///
/// Thin wrapper over [`CodEngine`] with [`Method::Codl`]; prefer the engine
/// for new code.
pub struct Codl<'g> {
    engine: CodEngine,
    base: Arc<Hierarchy>,
    index: Arc<HimorIndex>,
    _g: PhantomData<&'g AttributedGraph>,
}

impl<'g> Codl<'g> {
    /// Builds `T` and the HIMOR index (`Θ = θ·|V|` RR graphs).
    pub fn new<R: Rng>(g: &'g AttributedGraph, cfg: CodConfig, rng: &mut R) -> Self {
        let engine = CodEngine::new(g.clone(), cfg);
        let base = engine.base_hierarchy();
        // Build the index now, on the caller's RNG, exactly where the
        // pre-engine facade consumed it.
        let index = engine.ensure_himor(rng);
        Self {
            engine,
            base,
            index,
            _g: PhantomData,
        }
    }

    /// Reuses a prebuilt hierarchy and index (for benchmarks that amortize
    /// construction).
    pub fn from_parts(
        g: &'g AttributedGraph,
        cfg: CodConfig,
        dendro: Dendrogram,
        lca: LcaIndex,
        index: HimorIndex,
    ) -> Self {
        let engine =
            CodEngine::from_parts(Arc::new(g.clone()), cfg, Hierarchy { dendro, lca }, index);
        let base = engine.base_hierarchy();
        let index = match engine.himor() {
            Some(ix) => ix,
            None => unreachable!("from_parts pre-fills the index"),
        };
        Self {
            engine,
            base,
            index,
            _g: PhantomData,
        }
    }

    /// The HIMOR index.
    pub fn index(&self) -> &HimorIndex {
        &self.index
    }

    /// The reference hierarchy.
    pub fn hierarchy(&self) -> (&Dendrogram, &LcaIndex) {
        (&self.base.dendro, &self.base.lca)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &CodEngine {
        &self.engine
    }

    /// Answers a COD query for `(q, attr)` — Algorithm 3.
    pub fn query<R: Rng>(
        &self,
        q: NodeId,
        attr: AttrId,
        rng: &mut R,
    ) -> CodResult<Option<CodAnswer>> {
        self.engine.query(Query::new(q, attr, Method::Codl), rng)
    }
}

/// Runs compressed evaluation over `chain` and packages the answer.
///
/// Under a seeded [`CodConfig::parallelism`] policy, exactly one `u64` is
/// drawn from `rng` as the master seed — the same draw for every thread
/// count — and all sampling randomness is derived from it per index.
/// (The engine has its own planned variant of this; the free function
/// remains for [`crate::dynamic`], which evaluates ad-hoc chains.)
pub(crate) fn answer_from_chain<R: Rng>(
    g: &AttributedGraph,
    cfg: CodConfig,
    chain: &(impl Chain + Sync),
    q: NodeId,
    rng: &mut R,
) -> CodResult<Option<CodAnswer>> {
    if chain.is_empty() {
        return Ok(None);
    }
    let out = if cfg.parallelism.is_seeded() {
        compressed_cod_budgeted_seeded(
            g.csr(),
            cfg.model,
            chain,
            q,
            cfg.k,
            cfg.theta,
            cfg.budget,
            rng.next_u64(),
            cfg.parallelism,
        )?
    } else {
        compressed_cod_budgeted(
            g.csr(),
            cfg.model,
            chain,
            q,
            cfg.k,
            cfg.theta,
            cfg.budget,
            rng,
        )?
    };
    let Some(level) = out.best_level else {
        return Ok(None);
    };
    Ok(Some(CodAnswer {
        members: chain.members(level),
        rank: out.ranks[level],
        source: AnswerSource::Compressed,
        uncertain: out.truncated || out.uncertain[level],
        cache: None,
        trace: None,
        degraded: None,
    }))
}

/// [`answer_from_chain`] served from a shared RR-pool cache instead of
/// fresh sampling: the chain's universe is looked up (or created) in
/// `cache` under `attr` and the pooled evaluation folds cached RR graphs.
/// No caller RNG is consumed — pooled sampling is key-derived, so the
/// answer is a pure function of `(g, cfg, chain, q, attr)`.
pub(crate) fn answer_from_chain_pooled(
    g: &AttributedGraph,
    cfg: CodConfig,
    chain: &impl Chain,
    q: NodeId,
    attr: Option<AttrId>,
    cache: &crate::pool::PoolCache,
) -> CodResult<Option<CodAnswer>> {
    if chain.is_empty() {
        return Ok(None);
    }
    let universe = chain.universe();
    let restricted = universe.len() < g.num_nodes();
    let (entry, _) = cache.get_or_create(attr, &universe, restricted);
    let out = crate::compressed::compressed_cod_pooled(
        g.csr(),
        cfg.model,
        chain,
        q,
        cfg.k,
        cfg.theta,
        cfg.budget,
        &entry,
        cfg.parallelism,
        None,
        None,
    )?;
    let Some(level) = out.best_level else {
        return Ok(None);
    };
    Ok(Some(CodAnswer {
        members: chain.members(level),
        rank: out.ranks[level],
        source: AnswerSource::Compressed,
        uncertain: out.truncated || out.uncertain[level],
        cache: None,
        trace: None,
        degraded: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{AttrInterner, AttrTable, GraphBuilder};

    /// Two attribute-homogeneous triangles bridged; hubs 0 and 3.
    fn toy() -> AttributedGraph {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 5),
            (2, 3),
            (0, 6),
            (0, 7),
            (6, 7),
        ] {
            b.add_edge(u, v);
        }
        let mut i = AttrInterner::new();
        let a = i.intern("A");
        let c = i.intern("B");
        let lists = vec![
            vec![a],
            vec![a],
            vec![a],
            vec![c],
            vec![c],
            vec![c],
            vec![a],
            vec![a],
        ];
        AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), i)
    }

    fn cfg() -> CodConfig {
        CodConfig {
            k: 2,
            theta: 120,
            ..CodConfig::default()
        }
    }

    #[test]
    fn codu_finds_some_community_for_a_hub() {
        let g = toy();
        let codu = Codu::new(&g, cfg());
        let mut rng = SmallRng::seed_from_u64(31);
        let ans = codu
            .query(0, &mut rng)
            .unwrap()
            .expect("hub has a community");
        assert!(ans.members.contains(&0));
        assert!(ans.rank <= 2);
        assert_eq!(ans.source, AnswerSource::Compressed);
    }

    #[test]
    fn codr_and_codl_minus_accept_attributes() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(32);
        let codr = Codr::new(&g, cfg());
        let a = codr.query(0, 0, &mut rng).unwrap();
        assert!(a.is_some());
        let cm = CodlMinus::new(&g, cfg());
        let b = cm.query(0, 0, &mut rng).unwrap();
        assert!(b.is_some());
    }

    #[test]
    fn codl_index_answers_hub_queries() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(33);
        let codl = Codl::new(&g, cfg(), &mut rng);
        let ans = codl.query(0, 0, &mut rng).unwrap().expect("hub answered");
        assert!(ans.members.contains(&0));
        // The hub is globally influential, so the index should answer.
        assert_eq!(ans.source, AnswerSource::Index);
        assert!(!ans.uncertain);
    }

    #[test]
    fn all_variants_return_communities_containing_q() {
        let g = toy();
        let c = cfg();
        let mut rng = SmallRng::seed_from_u64(34);
        let codu = Codu::new(&g, c);
        let codr = Codr::new(&g, c);
        let cm = CodlMinus::new(&g, c);
        let codl = Codl::new(&g, c, &mut rng);
        for q in 0..8u32 {
            let attr = g.node_attrs(q)[0];
            for ans in [
                codu.query(q, &mut rng).unwrap(),
                codr.query(q, attr, &mut rng).unwrap(),
                cm.query(q, attr, &mut rng).unwrap(),
                codl.query(q, attr, &mut rng).unwrap(),
            ]
            .into_iter()
            .flatten()
            {
                assert!(ans.members.contains(&q), "q={q} missing from C*");
                assert!(ans.members.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn boundary_rejects_bad_parameters_without_panicking() {
        let g = toy();
        let mut rng = SmallRng::seed_from_u64(35);
        let codu = Codu::new(&g, cfg());
        // Node id out of range.
        let err = codu.query(99, &mut rng).unwrap_err();
        assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        // Unknown attribute id.
        let codr = Codr::new(&g, cfg());
        let err = codr.query(0, 77, &mut rng).unwrap_err();
        assert!(err.to_string().contains("unknown attribute"), "{err}");
        // k == 0 and theta == 0.
        for bad in [CodConfig { k: 0, ..cfg() }, CodConfig { theta: 0, ..cfg() }] {
            let codu = Codu::new(&g, bad);
            let err = codu.query(0, &mut rng).unwrap_err();
            assert!(matches!(err, CodError::InvalidQuery(_)), "{err}");
        }
    }

    #[test]
    fn tight_budget_yields_best_effort_uncertain_answer() {
        let g = toy();
        let tight = CodConfig {
            budget: Some(8),
            ..cfg()
        };
        let mut rng = SmallRng::seed_from_u64(36);
        let codu = Codu::new(&g, tight);
        // 8 total samples instead of θ·|V| = 960: the query still answers,
        // but must carry the best-effort flag.
        if let Some(ans) = codu.query(0, &mut rng).unwrap() {
            assert!(ans.uncertain, "truncated evaluation must be flagged");
        }
        // A zero budget is a hard error, not a silent empty answer.
        let starved = CodConfig {
            budget: Some(0),
            ..cfg()
        };
        let codu = Codu::new(&g, starved);
        let err = codu.query(0, &mut rng).unwrap_err();
        assert!(matches!(err, CodError::BudgetExhausted { .. }), "{err}");
    }
}
