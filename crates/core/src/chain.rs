//! The hierarchical-community chain `H(q)` that COD evaluation runs over.
//!
//! The paper's Algorithm 1 is agnostic to where the nested communities come
//! from; this module provides the three concrete shapes used by the method
//! variants:
//!
//! * [`DendroChain`] — the root path of `q` in a dendrogram over the whole
//!   graph (CODU on `T`, CODR on the reweighted `T_ℓ`);
//! * [`SubgraphChain`] — the root path of `q` in a dendrogram over an
//!   induced subgraph, mapped back to global node ids (the reclustered part
//!   `H_ℓ(q | C_ℓ)` that HIMOR-based CODL evaluates, Algorithm 3 line 3);
//! * [`ComposedChain`] — LORE's `H_ℓ(q) = Ancestors(q, T_ℓ) ∪
//!   Ancestors(C_ℓ, T)` (Algorithm 2 line 4), used by CODL⁻.
//!
//! Chains list communities from the deepest (`C_0`, index 0) to the largest.

use cod_graph::subgraph::Subgraph;
use cod_graph::NodeId;
use cod_hierarchy::{Dendrogram, LcaIndex, VertexId};

use crate::error::{CodError, CodResult};

/// A chain of strictly nested communities containing the query node,
/// ordered from deepest (smallest, index 0) upward.
///
/// `level_of` is the workhorse of HFS (§III-A): for any node `u` it returns
/// the index of the *deepest* chain community containing `u`, or `None` if
/// `u` lies outside the whole chain.
pub trait Chain {
    /// Number of communities `|H(q)|`.
    fn len(&self) -> usize;

    /// Whether the chain is empty (single-node graphs).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size `|C_h|` of the `h`-th community.
    fn size(&self, h: usize) -> usize;

    /// Index of the deepest chain community containing `u`, if any.
    fn level_of(&self, u: NodeId) -> Option<usize>;

    /// Members of `C_h`, sorted ascending by node id.
    fn members(&self, h: usize) -> Vec<NodeId>;

    /// The nodes eligible as RR-graph sources (the largest community's
    /// members), sorted ascending. Sampling is restricted here: induced RR
    /// graphs of chain communities never leave it (Definition 3).
    fn universe(&self) -> Vec<NodeId>;

    /// A short label for community `h` (diagnostics).
    fn label(&self, h: usize) -> String {
        format!("C_{h}")
    }
}

/// `H(q)`: the full root path of `q` in a dendrogram over the whole graph.
pub struct DendroChain<'a> {
    dendro: &'a Dendrogram,
    lca: &'a LcaIndex,
    q: NodeId,
    path: Vec<VertexId>,
    /// `depth(leaf(q)) - 1`, so `path[i]` has depth `base - i`.
    base: u32,
}

impl<'a> DendroChain<'a> {
    /// Builds the chain for query node `q`. Fails with
    /// [`CodError::InvalidQuery`] when `q` is not a leaf of the hierarchy.
    pub fn new(dendro: &'a Dendrogram, lca: &'a LcaIndex, q: NodeId) -> CodResult<Self> {
        if (q as usize) >= dendro.num_leaves() {
            return Err(CodError::InvalidQuery(format!(
                "node {q} out of range (hierarchy covers {} nodes)",
                dendro.num_leaves()
            )));
        }
        let path = dendro.root_path(q);
        let base = dendro.depth(dendro.leaf(q)) - 1;
        debug_assert_eq!(path.len(), base as usize);
        Ok(Self {
            dendro,
            lca,
            q,
            path,
            base,
        })
    }

    /// The dendrogram vertex of community `h`.
    pub fn vertex(&self, h: usize) -> VertexId {
        self.path[h]
    }

    /// The query node.
    pub fn query(&self) -> NodeId {
        self.q
    }
}

impl Chain for DendroChain<'_> {
    fn len(&self) -> usize {
        self.path.len()
    }

    fn size(&self, h: usize) -> usize {
        self.dendro.size(self.path[h])
    }

    fn level_of(&self, u: NodeId) -> Option<usize> {
        if u == self.q {
            return if self.path.is_empty() { None } else { Some(0) };
        }
        let d = self
            .dendro
            .depth(self.lca.lca(self.dendro.leaf(self.q), self.dendro.leaf(u)));
        Some((self.base - d) as usize)
    }

    fn members(&self, h: usize) -> Vec<NodeId> {
        self.dendro.members_sorted(self.path[h])
    }

    fn universe(&self) -> Vec<NodeId> {
        match self.path.last() {
            Some(&root) => self.dendro.members_sorted(root),
            None => vec![self.q],
        }
    }

    fn label(&self, h: usize) -> String {
        format!("T:{}", self.path[h])
    }
}

/// The root path of `q` inside a reclustered *subgraph*, expressed in
/// global node ids. Excludes the subgraph's root community (`C_ℓ` itself),
/// which the HIMOR index answers directly.
pub struct SubgraphChain<'a> {
    sub: &'a Subgraph,
    dendro: &'a Dendrogram,
    lca: &'a LcaIndex,
    q_local: NodeId,
    /// Path of `q_local` in the subgraph dendrogram, root excluded.
    path: Vec<VertexId>,
    base: u32,
    include_root: bool,
}

impl<'a> SubgraphChain<'a> {
    /// Builds the chain for global query node `q`, which must be a member
    /// of `sub` (otherwise [`CodError::InvalidQuery`]). When `include_root`
    /// is false the subgraph's root community is dropped from the chain
    /// (Algorithm 3 queries it from the index).
    pub fn new(
        sub: &'a Subgraph,
        dendro: &'a Dendrogram,
        lca: &'a LcaIndex,
        q: NodeId,
        include_root: bool,
    ) -> CodResult<Self> {
        let Some(q_local) = sub.local(q) else {
            return Err(CodError::InvalidQuery(format!(
                "query node {q} is not a member of the reclustered subgraph"
            )));
        };
        if dendro.num_leaves() != sub.len() {
            return Err(CodError::GraphFormat(format!(
                "subgraph hierarchy covers {} leaves but the subgraph has {} nodes",
                dendro.num_leaves(),
                sub.len()
            )));
        }
        let mut path = dendro.root_path(q_local);
        if !include_root {
            path.pop();
        }
        let base = dendro.depth(dendro.leaf(q_local)) - 1;
        Ok(Self {
            sub,
            dendro,
            lca,
            q_local,
            path,
            base,
            include_root,
        })
    }

    /// Whether the subgraph root is part of the chain.
    pub fn includes_root(&self) -> bool {
        self.include_root
    }
}

impl Chain for SubgraphChain<'_> {
    fn len(&self) -> usize {
        self.path.len()
    }

    fn size(&self, h: usize) -> usize {
        self.dendro.size(self.path[h])
    }

    fn level_of(&self, u: NodeId) -> Option<usize> {
        let lu = self.sub.local(u)?;
        let h = if lu == self.q_local {
            0usize
        } else {
            let d = self.dendro.depth(
                self.lca
                    .lca(self.dendro.leaf(self.q_local), self.dendro.leaf(lu)),
            );
            (self.base - d) as usize
        };
        if h < self.path.len() {
            Some(h)
        } else {
            None // only in the excluded subgraph root
        }
    }

    fn members(&self, h: usize) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self
            .dendro
            .members(self.path[h])
            .iter()
            .map(|&l| self.sub.parent(l))
            .collect();
        m.sort_unstable();
        m
    }

    fn universe(&self) -> Vec<NodeId> {
        // Sources come from the whole subgraph (the reclustered community);
        // sources outside every chain community contribute nothing and are
        // skipped by HFS.
        self.sub.members.clone()
    }

    fn label(&self, h: usize) -> String {
        format!("Tl:{}", self.path[h])
    }
}

/// LORE's attribute-aware chain `H_ℓ(q)`: the subgraph path inside `C_ℓ`
/// (including `C_ℓ` as the subgraph root) followed by the ancestors of
/// `C_ℓ` in the non-attributed hierarchy `T` (Algorithm 2, line 4).
pub struct ComposedChain<'a> {
    /// Lower, reclustered part (with the subgraph root = `C_ℓ` included).
    lower: SubgraphChain<'a>,
    /// The full-graph hierarchy `T`.
    dendro: &'a Dendrogram,
    lca: &'a LcaIndex,
    /// Strict ancestors of `C_ℓ` in `T`, deepest first.
    upper: Vec<VertexId>,
    /// The reclustered community `C_ℓ` as a vertex of `T`.
    c_ell: VertexId,
}

impl<'a> ComposedChain<'a> {
    /// Composes the chain: `lower` must be built with `include_root =
    /// true`, and its subgraph must be induced by the members of `c_ell`
    /// (otherwise [`CodError::GraphFormat`]).
    pub fn new(
        lower: SubgraphChain<'a>,
        dendro: &'a Dendrogram,
        lca: &'a LcaIndex,
        c_ell: VertexId,
    ) -> CodResult<Self> {
        if !lower.includes_root() {
            return Err(CodError::GraphFormat(
                "composed chain needs a lower chain that includes C_ell".into(),
            ));
        }
        if (c_ell as usize) >= dendro.num_vertices() {
            return Err(CodError::GraphFormat(format!(
                "C_ell vertex {c_ell} out of range ({} hierarchy vertices)",
                dendro.num_vertices()
            )));
        }
        if lower.sub.len() != dendro.size(c_ell) {
            return Err(CodError::GraphFormat(format!(
                "lower chain spans {} nodes but C_ell has {}",
                lower.sub.len(),
                dendro.size(c_ell)
            )));
        }
        let mut upper = Vec::new();
        let mut v = dendro.parent(c_ell);
        while v != cod_hierarchy::NO_VERTEX {
            upper.push(v);
            v = dendro.parent(v);
        }
        Ok(Self {
            lower,
            dendro,
            lca,
            upper,
            c_ell,
        })
    }
}

impl Chain for ComposedChain<'_> {
    fn len(&self) -> usize {
        self.lower.len() + self.upper.len()
    }

    fn size(&self, h: usize) -> usize {
        if h < self.lower.len() {
            self.lower.size(h)
        } else {
            self.dendro.size(self.upper[h - self.lower.len()])
        }
    }

    fn level_of(&self, u: NodeId) -> Option<usize> {
        if self.dendro.contains(self.c_ell, u) {
            // Inside C_ℓ: the subgraph chain decides (it includes its root,
            // so this is always Some).
            return self.lower.level_of(u);
        }
        // Outside C_ℓ: the deepest ancestor of C_ℓ in T containing u is
        // lca(u, C_ℓ).
        let a = self.lca.lca(self.dendro.leaf(u), self.c_ell);
        let d = self.dendro.depth(a);
        let j = (self.dendro.depth(self.c_ell) - 1 - d) as usize;
        Some(self.lower.len() + j)
    }

    fn members(&self, h: usize) -> Vec<NodeId> {
        if h < self.lower.len() {
            self.lower.members(h)
        } else {
            self.dendro.members_sorted(self.upper[h - self.lower.len()])
        }
    }

    fn universe(&self) -> Vec<NodeId> {
        match self.upper.last() {
            Some(&root) => self.dendro.members_sorted(root),
            None => self.lower.universe(),
        }
    }

    fn label(&self, h: usize) -> String {
        if h < self.lower.len() {
            self.lower.label(h)
        } else {
            format!("T:{}", self.upper[h - self.lower.len()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_graph::{Csr, GraphBuilder};
    use cod_hierarchy::{cluster_unweighted, Linkage};

    fn line(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as NodeId, v as NodeId + 1);
        }
        b.build()
    }

    fn dendro(g: &Csr) -> Dendrogram {
        Dendrogram::from_merges(g.num_nodes(), &cluster_unweighted(g, Linkage::Average))
    }

    #[test]
    fn dendro_chain_is_nested_and_ends_at_root() {
        let g = line(8);
        let d = dendro(&g);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 3).unwrap();
        assert!(chain.len() >= 3);
        let mut prev = 0usize;
        for h in 0..chain.len() {
            assert!(chain.size(h) > prev, "sizes strictly increase");
            prev = chain.size(h);
            assert!(chain.members(h).contains(&3));
        }
        assert_eq!(chain.size(chain.len() - 1), 8);
        assert_eq!(chain.universe().len(), 8);
    }

    #[test]
    fn level_of_is_deepest_containing_community() {
        let g = line(8);
        let d = dendro(&g);
        let lca = LcaIndex::new(&d);
        let chain = DendroChain::new(&d, &lca, 3).unwrap();
        assert_eq!(chain.level_of(3), Some(0));
        for u in 0..8 {
            let h = chain.level_of(u).unwrap();
            assert!(chain.members(h).contains(&u), "u={u} level {h}");
            if h > 0 {
                assert!(
                    !chain.members(h - 1).contains(&u),
                    "u={u} should not be one level deeper"
                );
            }
        }
    }

    #[test]
    fn subgraph_chain_maps_to_global_ids() {
        let g = line(8);
        let members: Vec<NodeId> = vec![2, 3, 4, 5];
        let sub = Subgraph::induced(&g, &members);
        let sd = dendro(&sub.csr);
        let lca = LcaIndex::new(&sd);
        let chain = SubgraphChain::new(&sub, &sd, &lca, 3, true).unwrap();
        // Top community is the whole subgraph, in global ids.
        assert_eq!(chain.members(chain.len() - 1), members);
        assert!(chain.level_of(0).is_none(), "node outside subgraph");
        assert_eq!(chain.level_of(3), Some(0));
    }

    #[test]
    fn subgraph_chain_can_exclude_root() {
        let g = line(8);
        let members: Vec<NodeId> = vec![2, 3, 4, 5];
        let sub = Subgraph::induced(&g, &members);
        let sd = dendro(&sub.csr);
        let lca = LcaIndex::new(&sd);
        let with_root = SubgraphChain::new(&sub, &sd, &lca, 3, true).unwrap();
        let without = SubgraphChain::new(&sub, &sd, &lca, 3, false).unwrap();
        assert_eq!(without.len() + 1, with_root.len());
    }

    #[test]
    fn composed_chain_stitches_lower_and_upper() {
        let g = line(8);
        let d = dendro(&g);
        let lca = LcaIndex::new(&d);
        // Pick C_ℓ = the deepest ancestor of node 3 with size >= 3.
        let path = d.root_path(3);
        let c_ell = *path
            .iter()
            .find(|&&v| d.size(v) >= 3)
            .expect("some ancestor has size >= 3");
        let members = d.members_sorted(c_ell);
        let sub = Subgraph::induced(&g, &members);
        let sd = dendro(&sub.csr);
        let slca = LcaIndex::new(&sd);
        let lower = SubgraphChain::new(&sub, &sd, &slca, 3, true).unwrap();
        let chain = ComposedChain::new(lower, &d, &lca, c_ell).unwrap();
        // Chain sizes strictly increase and the top is the whole graph.
        let mut prev = 0usize;
        for h in 0..chain.len() {
            let s = chain.size(h);
            assert!(s > prev);
            prev = s;
        }
        assert_eq!(chain.size(chain.len() - 1), 8);
        // level_of stays consistent with membership across the seam.
        for u in 0..8 {
            let h = chain.level_of(u).unwrap();
            assert!(chain.members(h).contains(&u), "u={u} at level {h}");
            if h > 0 {
                assert!(!chain.members(h - 1).contains(&u));
            }
        }
    }
}
