//! CODW — the append-only mutation write-ahead log.
//!
//! Durability for streaming mutations: every [`Mutation`] is appended
//! (and, per policy, fsync'd) **before** `DynamicCod` applies it, so a
//! crash at any instant loses at most the records the fsync policy had
//! not yet forced to stable storage — never an *applied but unlogged*
//! event. Recovery (`crate::recovery`) replays the suffix of this log
//! past the last checkpoint through the incremental repair pipeline.
//!
//! # CODW format, version 1
//!
//! ```text
//! header:  magic "CODW" | version u32 = 1
//! records: len u32 | payload (len bytes) | crc32(payload) u32
//!          payload = one CODM-encoded event (tag u8 + fields; see
//!          `mutation` — the two formats share the per-event layout)
//! ```
//!
//! There is no footer: the file is append-only and a crash can land
//! mid-record. [`WalWriter::open`] therefore scans the record stream and
//! **truncates** the tail at the first record whose length prefix,
//! checksum or event encoding fails to validate, surfacing what it cut as
//! a [`TornTail`] report. A torn tail is an expected crash artifact, not
//! corruption — every complete record before it is intact by CRC.
//!
//! # Fsync policy
//!
//! * [`FsyncPolicy::Always`] — `sync_data` after every record: zero loss
//!   window, highest latency.
//! * [`FsyncPolicy::GroupCommit`] — sync when `max_records` are pending
//!   **or** `max_delay` has elapsed since the first unsynced record,
//!   whichever comes first: bounded loss window, amortized cost.
//! * [`FsyncPolicy::Os`] — never sync explicitly; the OS page cache
//!   decides. Loss window is unbounded under power failure but `kill -9`
//!   of the process alone loses nothing (the kernel still holds the
//!   pages).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::error::{CodError, CodResult};
use crate::failpoint::{self, Site};
use crate::mutation::{self, Mutation};
use crate::persist::crc32;

/// File magic for the write-ahead log.
pub const WAL_MAGIC: &[u8; 4] = b"CODW";
/// Current CODW format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version.
pub const WAL_HEADER_LEN: u64 = 8;

/// A record payload larger than this is treated as a torn/corrupt length
/// prefix. One event is ~9 bytes + 4 per attribute; 16 MiB is orders of
/// magnitude beyond any legitimate record.
const MAX_RECORD_LEN: u32 = 16 << 20;

/// When to force appended records to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every appended record.
    Always,
    /// Sync when `max_records` are pending or `max_delay` has elapsed
    /// since the first unsynced record, whichever comes first.
    GroupCommit {
        /// Pending-record threshold that forces a sync (≥ 1).
        max_records: usize,
        /// Age of the oldest unsynced record that forces a sync.
        max_delay: Duration,
    },
    /// Never sync explicitly; leave flushing to the OS page cache.
    Os,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::GroupCommit {
            max_records: 32,
            max_delay: Duration::from_millis(10),
        }
    }
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `os`, or `group:N:MS`
    /// (`group` alone takes the defaults).
    pub fn parse(spec: &str) -> Result<FsyncPolicy, String> {
        match spec {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            "group" => Ok(FsyncPolicy::default()),
            other => {
                let Some(rest) = other.strip_prefix("group:") else {
                    return Err(format!(
                        "unknown fsync policy {other:?} (expected always, os, group or group:N:MS)"
                    ));
                };
                let (n, ms) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("bad group policy {other:?} (expected group:N:MS)"))?;
                let max_records: usize = n
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad group record count {n:?}"))?;
                let max_delay_ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad group delay {ms:?} (milliseconds)"))?;
                Ok(FsyncPolicy::GroupCommit {
                    max_records,
                    max_delay: Duration::from_millis(max_delay_ms),
                })
            }
        }
    }
}

/// What [`WalWriter::open`] truncated off the end of a crashed log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// File offset of the first invalid byte — the log's new length.
    pub valid_offset: u64,
    /// How many trailing bytes were cut.
    pub dropped_bytes: u64,
}

/// Receipt for one appended record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendReceipt {
    /// File offset one past this record (the durable prefix if synced).
    pub end_offset: u64,
    /// Whether this append forced an fsync.
    pub synced: bool,
}

/// Append handle over one CODW file.
///
/// Not internally synchronized: callers (i.e. `DurableCod`) serialize
/// appends the same way they serialize `DynamicCod::apply`.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Current file length == offset of the next record.
    offset: u64,
    /// Complete records currently in the file.
    records: u64,
    /// Records appended since the last sync.
    unsynced: usize,
    /// When the oldest unsynced record was appended.
    oldest_unsynced: Option<Instant>,
}

impl WalWriter {
    /// Opens (or creates) the log at `path` for appending.
    ///
    /// A new file gets a synced `CODW` header. An existing file is
    /// validated: header first, then every record (length sanity → CRC →
    /// event decode must consume the payload exactly). The first invalid
    /// byte ends the trusted prefix — everything past it is truncated
    /// away and reported as a [`TornTail`]. A pre-existing *header*
    /// mismatch (wrong magic/version) is real corruption, not a torn
    /// tail, and fails the open.
    pub fn open(path: &Path, policy: FsyncPolicy) -> CodResult<(Self, Option<TornTail>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut torn = None;
        let (offset, records) = if len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_all()?;
            (WAL_HEADER_LEN, 0)
        } else {
            let mut bytes = Vec::with_capacity(len as usize);
            file.read_to_end(&mut bytes)?;
            let (valid, records) = scan_records(&bytes, path)?;
            if valid < len {
                torn = Some(TornTail {
                    valid_offset: valid,
                    dropped_bytes: len - valid,
                });
                file.set_len(valid)?;
                file.sync_all()?;
            }
            (valid, records)
        };
        file.seek(SeekFrom::Start(offset))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                policy,
                offset,
                records,
                unsynced: 0,
                oldest_unsynced: None,
            },
            torn,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length (offset of the next record).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Complete records in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one event record, then applies the fsync policy.
    pub fn append(&mut self, m: &Mutation) -> CodResult<AppendReceipt> {
        let mut payload = Vec::with_capacity(16);
        mutation::encode_event(m, &mut payload);
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        failpoint::hit(Site::WalAppend, None);
        self.file.write_all(&record)?;
        self.offset += record.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.oldest_unsynced.is_none() {
            self.oldest_unsynced = Some(Instant::now());
        }
        let must_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::GroupCommit {
                max_records,
                max_delay,
            } => {
                self.unsynced >= max_records
                    || self
                        .oldest_unsynced
                        .is_some_and(|t| t.elapsed() >= max_delay)
            }
            FsyncPolicy::Os => false,
        };
        let synced = if must_sync {
            self.sync()?;
            true
        } else {
            false
        };
        Ok(AppendReceipt {
            end_offset: self.offset,
            synced,
        })
    }

    /// Rolls back the most recent append (used when the in-memory apply of
    /// a just-logged event fails): truncates the file to `prev_offset`, so
    /// the log never carries a record that was not applied and would halt
    /// a later replay.
    pub(crate) fn rollback_last(&mut self, prev_offset: u64) -> CodResult<()> {
        self.file.set_len(prev_offset)?;
        self.file.seek(SeekFrom::Start(prev_offset))?;
        self.offset = prev_offset;
        self.records = self.records.saturating_sub(1);
        self.unsynced = self.unsynced.saturating_sub(1);
        if self.unsynced == 0 {
            self.oldest_unsynced = None;
        }
        Ok(())
    }

    /// Forces every appended record to stable storage now, regardless of
    /// policy. Returns whether anything was actually pending.
    pub fn flush_sync(&mut self) -> CodResult<bool> {
        if self.unsynced == 0 {
            return Ok(false);
        }
        self.sync()?;
        Ok(true)
    }

    fn sync(&mut self) -> CodResult<()> {
        failpoint::hit(Site::WalFsync, None);
        self.file.sync_data()?;
        self.unsynced = 0;
        self.oldest_unsynced = None;
        Ok(())
    }
}

/// Validates `bytes` as a CODW image and returns `(valid_prefix_len,
/// record_count)`. The header must be intact (hard error otherwise); the
/// record stream is scanned until the first invalid record.
fn scan_records(bytes: &[u8], path: &Path) -> CodResult<(u64, u64)> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(CodError::IndexCorrupt(format!(
            "WAL {} too short for its header: {} bytes",
            path.display(),
            bytes.len()
        )));
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(CodError::IndexCorrupt(format!(
            "WAL {}: bad magic; not a COD write-ahead log",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap_or([0; 4]));
    if version != WAL_VERSION {
        return Err(CodError::IndexCorrupt(format!(
            "WAL {}: unsupported version {version} (expected {WAL_VERSION})",
            path.display()
        )));
    }
    let mut pos = WAL_HEADER_LEN as usize;
    let mut records = 0u64;
    while pos < bytes.len() {
        match parse_record(&bytes[pos..]) {
            Some((_m, consumed)) => {
                pos += consumed;
                records += 1;
            }
            None => break,
        }
    }
    Ok((pos as u64, records))
}

/// Parses one record from the front of `rest`; `None` marks a torn or
/// corrupt record (the caller truncates there).
fn parse_record(rest: &[u8]) -> Option<(Mutation, usize)> {
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(rest[..4].try_into().ok()?);
    if len > MAX_RECORD_LEN {
        return None;
    }
    let end = 4usize.checked_add(len as usize)?.checked_add(4)?;
    if rest.len() < end {
        return None;
    }
    let payload = &rest[4..4 + len as usize];
    let stored = u32::from_le_bytes(rest[4 + len as usize..end].try_into().ok()?);
    if stored != crc32(payload) {
        return None;
    }
    let mut pos = 0usize;
    let m = mutation::decode_event(payload, &mut pos).ok()?;
    if pos != payload.len() {
        return None; // stray bytes inside a CRC-valid payload
    }
    Some((m, end))
}

/// Reads the records starting at byte `from_offset` of a log that
/// [`WalWriter::open`] has already tail-truncated. Unlike `open`, this is
/// a *strict* reader: any invalid record here (or an out-of-range
/// `from_offset`) is corruption, because the torn tail was already cut.
pub fn read_records(path: &Path, from_offset: u64) -> CodResult<Vec<Mutation>> {
    let bytes = std::fs::read(path)?;
    // Validate the header even when the caller starts past it.
    let (valid, _) = scan_records(&bytes, path)?;
    if from_offset < WAL_HEADER_LEN || from_offset > bytes.len() as u64 {
        return Err(CodError::IndexCorrupt(format!(
            "WAL {}: replay offset {from_offset} out of range (file has {} bytes)",
            path.display(),
            bytes.len()
        )));
    }
    if valid < bytes.len() as u64 {
        return Err(CodError::IndexCorrupt(format!(
            "WAL {}: invalid record at offset {valid} (log was not tail-truncated before replay)",
            path.display()
        )));
    }
    let mut pos = from_offset as usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        match parse_record(&bytes[pos..]) {
            Some((m, consumed)) => {
                pos += consumed;
                out.push(m);
            }
            None => {
                return Err(CodError::IndexCorrupt(format!(
                    "WAL {}: replay offset {pos} does not land on a record boundary",
                    path.display()
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("cod_wal_{tag}_{}_{seq}.codw", std::process::id()))
    }

    fn sample_events() -> Vec<Mutation> {
        vec![
            Mutation::InsertEdge { u: 1, v: 2 },
            Mutation::RemoveEdge { u: 0, v: 3 },
            Mutation::SetAttrs {
                node: 4,
                attrs: vec![7, 9],
            },
            Mutation::SetAttrs {
                node: 5,
                attrs: vec![],
            },
        ]
    }

    #[test]
    fn append_read_round_trip() {
        let path = tmp_path("round_trip");
        let (mut w, torn) = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        assert!(torn.is_none());
        for m in &sample_events() {
            let r = w.append(m).unwrap();
            assert!(r.synced);
        }
        assert_eq!(w.records(), 4);
        let back = read_records(&path, WAL_HEADER_LEN).unwrap();
        assert_eq!(back, sample_events());
        // Reopen reports the same geometry with no torn tail.
        let offset = w.offset();
        drop(w);
        let (w2, torn) = WalWriter::open(&path, FsyncPolicy::Os).unwrap();
        assert!(torn.is_none());
        assert_eq!(w2.offset(), offset);
        assert_eq!(w2.records(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_from_midpoint_offset() {
        let path = tmp_path("midpoint");
        let (mut w, _) = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        let events = sample_events();
        let mut offsets = vec![WAL_HEADER_LEN];
        for m in &events {
            offsets.push(w.append(m).unwrap().end_offset);
        }
        for (i, &off) in offsets.iter().enumerate() {
            let back = read_records(&path, off).unwrap();
            assert_eq!(back, events[i..], "suffix from record {i}");
        }
        // An offset inside a record is rejected, not misparsed.
        assert!(read_records(&path, offsets[1] + 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_at_every_boundary() {
        let path = tmp_path("torn");
        let (mut w, _) = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        let events = sample_events();
        let mut ends = vec![WAL_HEADER_LEN];
        for m in &events {
            ends.push(w.append(m).unwrap().end_offset);
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        for keep in WAL_HEADER_LEN as usize..full.len() {
            std::fs::write(&path, &full[..keep]).unwrap();
            let (w, torn) = WalWriter::open(&path, FsyncPolicy::Os).unwrap();
            // The trusted prefix is the last record end ≤ keep.
            let expect = *ends.iter().rfind(|&&e| e <= keep as u64).unwrap();
            let complete = ends
                .iter()
                .filter(|&&e| e != WAL_HEADER_LEN && e <= keep as u64)
                .count();
            assert_eq!(w.offset(), expect, "truncate at {keep}");
            assert_eq!(w.records(), complete as u64);
            if (keep as u64) == expect {
                assert!(torn.is_none(), "keep {keep} is a clean boundary");
            } else {
                let t = torn.unwrap();
                assert_eq!(t.valid_offset, expect);
                assert_eq!(t.dropped_bytes, keep as u64 - expect);
            }
            drop(w);
            let back = read_records(&path, WAL_HEADER_LEN).unwrap();
            assert_eq!(back, events[..complete]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flips_never_panic_and_never_misparse() {
        let path = tmp_path("flip");
        let (mut w, _) = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        for m in &sample_events() {
            w.append(m).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut mutated = full.clone();
            mutated[byte] ^= 0x01;
            std::fs::write(&path, &mutated).unwrap();
            match WalWriter::open(&path, FsyncPolicy::Os) {
                // Header flips are hard errors; record flips tail-truncate.
                Ok((w, _torn)) => {
                    assert!(byte >= WAL_HEADER_LEN as usize, "header flip must error");
                    // Whatever survived must re-read cleanly.
                    let back = read_records(w.path(), WAL_HEADER_LEN).unwrap();
                    assert!(back.len() <= sample_events().len());
                }
                Err(e) => {
                    assert!(matches!(e, CodError::IndexCorrupt(_)), "typed error: {e}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_syncs_on_record_threshold() {
        let path = tmp_path("group");
        let policy = FsyncPolicy::GroupCommit {
            max_records: 3,
            max_delay: Duration::from_secs(3600),
        };
        let (mut w, _) = WalWriter::open(&path, policy).unwrap();
        let m = Mutation::InsertEdge { u: 1, v: 2 };
        assert!(!w.append(&m).unwrap().synced);
        assert!(!w.append(&m).unwrap().synced);
        assert!(
            w.append(&m).unwrap().synced,
            "third append hits max_records"
        );
        assert!(!w.append(&m).unwrap().synced);
        assert!(w.flush_sync().unwrap());
        assert!(!w.flush_sync().unwrap(), "nothing pending after flush");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parse_accepts_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("os").unwrap(), FsyncPolicy::Os);
        assert_eq!(FsyncPolicy::parse("group").unwrap(), FsyncPolicy::default());
        assert_eq!(
            FsyncPolicy::parse("group:8:250").unwrap(),
            FsyncPolicy::GroupCommit {
                max_records: 8,
                max_delay: Duration::from_millis(250),
            }
        );
        assert!(FsyncPolicy::parse("group:0:250").is_err());
        assert!(FsyncPolicy::parse("nope").is_err());
        assert!(FsyncPolicy::parse("group:x:1").is_err());
    }
}
