//! # pcod — personalized characteristic community discovery
//!
//! A Rust implementation of *"Discovering Personalized Characteristic
//! Communities in Attributed Graphs"* (ICDE 2024): given a query node `q`
//! and a query attribute `ℓ_q` in an attributed graph, find the **largest
//! community in which `q` is one of the top-`k` influential nodes** under
//! the independent cascade model.
//!
//! ## Quick start
//!
//! ```
//! use pcod::prelude::*;
//! use rand::prelude::*;
//!
//! // The paper's running example (Fig. 2 graph + Fig. 5 attributes).
//! let data = pcod::datasets::paper_example();
//! let g = &data.graph;
//! let db = g.interner().get("DB").unwrap();
//!
//! // Fully optimized CODL: LORE local reclustering + HIMOR index.
//! let cfg = CodConfig { k: 1, theta: 200, ..CodConfig::default() };
//! let mut rng = SmallRng::seed_from_u64(42);
//! let codl = Codl::new(g, cfg, &mut rng);
//!
//! // `query` returns `CodResult<Option<CodAnswer>>`: `Err` for invalid
//! // input, `Ok(None)` when no community qualifies.
//! if let Some(answer) = codl.query(0, db, &mut rng).unwrap() {
//!     assert!(answer.members.contains(&0));
//!     assert!(answer.rank <= 1);
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR attributed graphs, builders, generators, measures |
//! | [`hierarchy`] | NN-chain agglomerative clustering, dendrograms, O(1) LCA |
//! | [`influence`] | IC/LT models, RR graphs, estimators, Monte-Carlo truth |
//! | [`cod`] | compressed COD evaluation, LORE, HIMOR, method pipelines |
//! | [`search`] | ACQ / ATC / CAC community-search baselines |
//! | [`datasets`] | Table-I dataset presets and query workloads |
//! | [`serve`] | std-only HTTP serving tier with drain + load shedding |

pub use cod_core as cod;
pub use cod_datasets as datasets;
pub use cod_graph as graph;
pub use cod_hierarchy as hierarchy;
pub use cod_influence as influence;
pub use cod_search as search;
pub use cod_serve as serve;

/// The most common imports for COD applications.
pub mod prelude {
    pub use cod_core::{
        CacheOutcome, CacheStats, Chain, CodAnswer, CodConfig, CodEngine, CodError, CodResult,
        Codl, CodlMinus, Codr, Codu, ComposedChain, Counter, DendroChain, HimorIndex, Method,
        MetricsSnapshot, Phase, Query, QueryLimits, QueryScratch, QueryTrace,
    };
    pub use cod_graph::{AttrId, AttributedGraph, Csr, GraphBuilder, NodeId};
    pub use cod_hierarchy::{Dendrogram, LcaIndex, Linkage};
    pub use cod_influence::{CancelToken, Model, Parallelism, RrSampler, SeedSequence};
}
