//! `cod` — command-line characteristic community discovery.
//!
//! Operates on plain-text edge-list + attribute-list files (see
//! `cod_graph::io` for the formats) or on the built-in dataset presets.
//!
//! ```text
//! cod stats     --edges g.txt [--attrs a.txt] | --preset cora
//! cod query     (graph opts) --node 17 [--attr DB] [--k 5] [--theta 10] [--method codl]
//!               [--index idx.codx [--strict-index]] [--budget N]
//! cod query     (graph opts) --queries FILE    # batch: one "node[,attr]" per line
//! cod hierarchy (graph opts) --node 17 [--levels 12]
//! cod baseline  (graph opts) --node 17 --attr DB --method acq|atc|cac
//! cod generate  --preset cora --out-edges g.txt --out-attrs a.txt
//! ```
//!
//! Every failure mode (missing file, malformed input, invalid query
//! parameters, corrupt index) exits non-zero with a one-line diagnostic on
//! stderr — never a panic backtrace.
//!
//! Run `cod help` for the full option list.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pcod::cod::chain::Chain;
use pcod::cod::compressed::{compressed_cod, compressed_cod_seeded};
use pcod::cod::persist::{load_index, save_index_versioned};
use pcod::cod::recluster::build_hierarchy;
use pcod::cod::shard::ShardedEngine;
use pcod::cod::MappedArtifacts;
use pcod::graph::io;
use pcod::graph::measures;
use pcod::prelude::*;
use pcod::serve::EngineHandle;
use rand::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&opts),
        "index" => cmd_index(&opts),
        "query" => cmd_query(&opts),
        "hierarchy" => cmd_hierarchy(&opts),
        "baseline" => cmd_baseline(&opts),
        "im" => cmd_im(&opts),
        "serve" => cmd_serve(&opts),
        "mutate" => cmd_mutate(&opts),
        "recover" => cmd_recover(&opts),
        "generate" => cmd_generate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cod — characteristic community discovery (ICDE 2024)

USAGE:
  cod <command> [options]

COMMANDS:
  stats      print graph statistics
  index      build the hierarchy + HIMOR index and persist them to --index
             (CODX v3 by default; --codx-version 2 for the legacy format)
  query      find the characteristic community of a node
  hierarchy  print a node's hierarchical communities and influence ranks
  baseline   run a community-search baseline (acq / atc / cac)
  im         greedy influence-maximization seeds (optionally inside the
             characteristic community of --node)
  serve      HTTP serving tier: /query, /query_batch, /metrics, /healthz,
             /readyz on --addr; SIGTERM/SIGINT drains and exits cleanly
  mutate     replay a mutation log against the incremental pipeline,
             printing a per-event repair/rebuild summary; with --wal DIR
             every event is WAL-logged and checkpointed (crash-safe)
  recover    recover a --wal DIR (replay the WAL over the last checkpoint)
             and print what recovery observed; --index FILE additionally
             writes the recovered artifacts as a standalone CODX v3 file
  generate   write a dataset preset to edge/attribute files
  help       show this text

GRAPH SOURCE (choose one):
  --edges FILE [--attrs FILE]   load from plain-text files
  --preset NAME                 built-in preset (cora, citeseer, pubmed,
                                retweet, amazon, dblp, livejournal)

OPTIONS:
  --node N        query node id
  --queries FILE  query: batch mode. One query per line, \"node\" or
                  \"node,attr\" (attr = name or numeric id; default --attr,
                  then the node's first attribute). Blank lines and lines
                  starting with # are skipped. All queries share one engine,
                  so repeat-attribute queries reuse cached reclusterings;
                  answers are identical to running each line separately
                  with the same --seed
  --attr NAME     query attribute (name or numeric id; default: the node's
                  first attribute)
  --k N           required influence rank (default 5)
  --theta N       RR graphs per node (default 10)
  --seed N        RNG seed (default 42)
  --method M      query: codu|codr|codl-|codl (default codl)
                  baseline: acq|atc|cac
  --levels N      hierarchy: number of levels to print (default 15)
  --index FILE    query (codl): persist the HIMOR index + hierarchy here.
                  Missing or corrupt files trigger a rebuild + resave with
                  a warning on stderr
  --strict-index  treat an unusable --index file as a fatal error instead
                  of rebuilding
  --codx-version V index/query: CODX format written by `cod index` and by
                  the corrupt-index rebuild path (3 = sectioned, mmap-able
                  artifact file, the default; 2 = legacy hierarchy+index)
  --mmap          query/serve: serve the --index CODX v3 artifacts from a
                  memory mapping (zero-copy, lazily CRC-verified) instead
                  of loading them eagerly. The graph source may be
                  omitted; the graph inside the artifact file is served
  --shards N      serve: partition the graph by connected component onto N
                  shards, one engine per shard over the shared artifacts;
                  batches scatter-gather with per-shard admission control.
                  Answers are bit-identical to --shards 1 for any N
  --budget N      cap total RR-graph samples per query; truncated answers
                  are flagged best-effort
  --deadline-ms N wall-clock deadline per query. A query that overruns it
                  degrades down the method ladder (codl -> codl- -> codu)
                  and the answer is tagged [degraded]; if no rung answers
                  in time the query errors with \"deadline exceeded\"
  --max-inflight N admission-control cap on concurrent batch calls; excess
                  calls are shed with a retriable \"engine overloaded\"
                  error instead of queueing
  --threads T     RR-sampling / index-build execution: serial (default,
                  legacy sequential sampling), auto (thread count from
                  RAYON_NUM_THREADS / COD_THREADS / the machine), or a
                  number. Any non-serial setting uses deterministic
                  per-sample seeding: results depend only on --seed, never
                  on the thread count
  --trace         query: print a per-query phase/counter trace line after
                  each answer (phase timings plus RR-graph, HFS, and top-k
                  work counts). Tracing never changes answers or RNG draws
  --pool          query/serve: serve compressed evaluations from a shared
                  cross-query RR-pool cache (deterministic key-derived
                  sampling with incremental top-ups and LRU eviction)
  --metrics-out F query: after all queries finish, write engine metrics in
                  Prometheus text format to F (counters, phase seconds,
                  latency histogram, cache gauges)
  --out-edges F   generate: output edge-list path
  --out-attrs F   generate: output attribute-list path
  --log FILE      mutate: mutation log to replay, one event per line:
                  \"add u v\", \"del u v\", or \"attrs v a1,a2\" (blank lines
                  and # comments are skipped). Each applied event is
                  flushed immediately and the line reports whether the
                  hierarchy was repaired in place, rebuilt, or merely
                  refreshed. mutate honors --k, --theta, --seed, and
                  --threads (default 1; any seeded setting replays
                  bit-identically at every thread count)

DURABILITY OPTIONS (mutate / recover / serve):
  --wal DIR       durable state directory: an fsync'd write-ahead log of
                  every mutation plus periodic checkpoint snapshots and a
                  crash-safe MANIFEST. mutate creates or recovers it;
                  recover replays it; serve recovers it on startup
                  (/readyz answers 503 RECOVERING until replay completes)
  --fsync P       WAL fsync policy: always (fsync every record), os (leave
                  it to the page cache), or group[:N:MS] (group commit:
                  fsync after N records or MS milliseconds, default 32:10)
  --checkpoint-events N     events between checkpoint snapshots (4096)
  --checkpoint-wal-bytes N  WAL bytes that force a checkpoint (16 MiB)

SERVE OPTIONS:
  --addr A:P      bind address (default 127.0.0.1:7700; port 0 = ephemeral)
  --workers N     HTTP worker threads (default 2)
  --accept-queue N connections queued ahead of the workers; beyond it new
                  connections are shed at the socket with 503 + Retry-After
                  (default 16)
  --drain-ms N    graceful-shutdown drain deadline: in-flight requests get
                  this long to finish before the engine kill switch degrades
                  them to best-effort answers (default 5000)
  --max-request-bytes N  request body cap, 413 beyond it (default 1048576)
  serve also honors --deadline-ms (default per-request deadline when the
  request carries none), --max-inflight, --k, --theta, --budget, --threads,
  --seed, and --metrics-out (written after drain completes)";

#[derive(Default)]
struct Opts {
    edges: Option<PathBuf>,
    attrs: Option<PathBuf>,
    preset: Option<String>,
    node: Option<NodeId>,
    queries: Option<PathBuf>,
    attr: Option<String>,
    k: usize,
    theta: usize,
    seed: u64,
    method: Option<String>,
    levels: usize,
    index: Option<PathBuf>,
    strict_index: bool,
    budget: Option<usize>,
    deadline_ms: Option<u64>,
    max_inflight: Option<usize>,
    threads: Option<Parallelism>,
    trace: bool,
    pool: bool,
    metrics_out: Option<PathBuf>,
    log: Option<PathBuf>,
    out_edges: Option<PathBuf>,
    out_attrs: Option<PathBuf>,
    addr: Option<String>,
    workers: Option<usize>,
    accept_queue: Option<usize>,
    drain_ms: Option<u64>,
    max_request_bytes: Option<usize>,
    shards: Option<usize>,
    mmap: bool,
    codx_version: Option<u32>,
    wal: Option<PathBuf>,
    fsync: Option<String>,
    checkpoint_events: Option<u64>,
    checkpoint_wal_bytes: Option<u64>,
}

fn parse_threads(raw: &str) -> Result<Parallelism, String> {
    match raw {
        "serial" => Ok(Parallelism::Serial),
        "auto" => Ok(Parallelism::Auto),
        n => n
            .parse::<usize>()
            .map(Parallelism::Threads)
            .map_err(|_| "--threads wants serial, auto, or a number".to_string()),
    }
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Opts {
            k: 5,
            theta: 10,
            seed: 42,
            levels: 15,
            ..Opts::default()
        };
        let mut i = 0;
        let value = |args: &[String], i: usize| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        while i < args.len() {
            // Boolean flags consume one slot; valued options consume two.
            if args[i] == "--strict-index" {
                o.strict_index = true;
                i += 1;
                continue;
            }
            if args[i] == "--trace" {
                o.trace = true;
                i += 1;
                continue;
            }
            if args[i] == "--pool" {
                o.pool = true;
                i += 1;
                continue;
            }
            if args[i] == "--mmap" {
                o.mmap = true;
                i += 1;
                continue;
            }
            match args[i].as_str() {
                "--edges" => o.edges = Some(PathBuf::from(value(args, i)?)),
                "--attrs" => o.attrs = Some(PathBuf::from(value(args, i)?)),
                "--preset" => o.preset = Some(value(args, i)?),
                "--node" => {
                    o.node = Some(value(args, i)?.parse().map_err(|_| "--node wants an id")?)
                }
                "--queries" => o.queries = Some(PathBuf::from(value(args, i)?)),
                "--attr" => o.attr = Some(value(args, i)?),
                "--k" => o.k = value(args, i)?.parse().map_err(|_| "--k wants a number")?,
                "--theta" => {
                    o.theta = value(args, i)?
                        .parse()
                        .map_err(|_| "--theta wants a number")?
                }
                "--seed" => {
                    o.seed = value(args, i)?
                        .parse()
                        .map_err(|_| "--seed wants a number")?
                }
                "--method" => o.method = Some(value(args, i)?),
                "--levels" => {
                    o.levels = value(args, i)?
                        .parse()
                        .map_err(|_| "--levels wants a number")?
                }
                "--index" => o.index = Some(PathBuf::from(value(args, i)?)),
                "--budget" => {
                    o.budget = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--budget wants a number")?,
                    )
                }
                "--deadline-ms" => {
                    o.deadline_ms = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--deadline-ms wants a number")?,
                    )
                }
                "--max-inflight" => {
                    o.max_inflight = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--max-inflight wants a number")?,
                    )
                }
                "--threads" => o.threads = Some(parse_threads(&value(args, i)?)?),
                "--metrics-out" => o.metrics_out = Some(PathBuf::from(value(args, i)?)),
                "--addr" => o.addr = Some(value(args, i)?),
                "--workers" => {
                    o.workers = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--workers wants a number")?,
                    )
                }
                "--accept-queue" => {
                    o.accept_queue = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--accept-queue wants a number")?,
                    )
                }
                "--drain-ms" => {
                    o.drain_ms = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--drain-ms wants a number")?,
                    )
                }
                "--max-request-bytes" => {
                    o.max_request_bytes = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--max-request-bytes wants a number")?,
                    )
                }
                "--shards" => {
                    o.shards = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--shards wants a number")?,
                    )
                }
                "--codx-version" => {
                    o.codx_version = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--codx-version wants 2 or 3")?,
                    )
                }
                "--log" => o.log = Some(PathBuf::from(value(args, i)?)),
                "--wal" => o.wal = Some(PathBuf::from(value(args, i)?)),
                "--fsync" => o.fsync = Some(value(args, i)?),
                "--checkpoint-events" => {
                    o.checkpoint_events = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--checkpoint-events wants a number")?,
                    )
                }
                "--checkpoint-wal-bytes" => {
                    o.checkpoint_wal_bytes = Some(
                        value(args, i)?
                            .parse()
                            .map_err(|_| "--checkpoint-wal-bytes wants a number")?,
                    )
                }
                "--out-edges" => o.out_edges = Some(PathBuf::from(value(args, i)?)),
                "--out-attrs" => o.out_attrs = Some(PathBuf::from(value(args, i)?)),
                other => return Err(format!("unknown option {other:?}")),
            }
            i += 2;
        }
        Ok(o)
    }

    fn load_graph(&self) -> Result<AttributedGraph, String> {
        match (&self.edges, &self.preset) {
            (Some(edges), None) => io::load_attributed(edges, self.attrs.as_deref())
                .map_err(|e| format!("loading graph: {e}")),
            (None, Some(name)) => pcod::datasets::by_name(name, self.seed)
                .map(|d| d.graph)
                .ok_or_else(|| format!("unknown preset {name:?}")),
            (Some(_), Some(_)) => Err("--edges and --preset are mutually exclusive".into()),
            (None, None) => Err("need --edges FILE or --preset NAME".into()),
        }
    }

    fn resolve_attr(&self, g: &AttributedGraph, q: NodeId) -> Result<AttrId, String> {
        match &self.attr {
            Some(name) => {
                if let Some(id) = g.interner().get(name) {
                    return Ok(id);
                }
                name.parse()
                    .map_err(|_| format!("unknown attribute {name:?}"))
            }
            None => g
                .node_attrs(q)
                .first()
                .copied()
                .ok_or_else(|| format!("node {q} has no attributes; pass --attr")),
        }
    }

    fn durability_config(&self) -> Result<pcod::cod::DurabilityConfig, String> {
        let mut dcfg = pcod::cod::DurabilityConfig::default();
        if let Some(spec) = &self.fsync {
            dcfg.fsync = pcod::cod::FsyncPolicy::parse(spec)?;
        }
        if let Some(n) = self.checkpoint_events {
            dcfg.checkpoint_every_events = n.max(1);
        }
        if let Some(n) = self.checkpoint_wal_bytes {
            dcfg.checkpoint_wal_bytes = n.max(1);
        }
        Ok(dcfg)
    }

    /// The COD configuration for durable commands: seeded by default
    /// (Threads(1) unless --threads says otherwise) because WAL replay
    /// requires deterministic rebuilds.
    fn seeded_cod_config(&self) -> CodConfig {
        CodConfig {
            parallelism: self.threads.unwrap_or(Parallelism::Threads(1)),
            ..self.cod_config()
        }
    }

    fn cod_config(&self) -> CodConfig {
        CodConfig {
            k: self.k,
            theta: self.theta,
            budget: self.budget,
            parallelism: self.threads.unwrap_or(Parallelism::Serial),
            trace: self.trace,
            pool: self.pool,
            limits: QueryLimits {
                deadline: self.deadline_ms.map(std::time::Duration::from_millis),
                ..QueryLimits::default()
            },
            max_inflight: self.max_inflight,
            ..CodConfig::default()
        }
    }
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let g = opts.load_graph()?;
    let csr = g.csr();
    let (ncomp, _) = pcod::graph::components::connected_components(csr);
    let max_deg = (0..g.num_nodes() as NodeId)
        .map(|v| g.degree(v))
        .max()
        .unwrap_or(0);
    println!("nodes:       {}", g.num_nodes());
    println!("edges:       {}", g.num_edges());
    println!("attributes:  {}", g.num_attrs());
    println!("components:  {ncomp}");
    println!("max degree:  {max_deg}");
    println!(
        "avg degree:  {:.2}",
        2.0 * g.num_edges() as f64 / g.num_nodes().max(1) as f64
    );
    let ds = pcod::graph::stats::degree_stats(csr);
    println!("median deg:  {}", ds.median);
    println!("pendants:    {:.1}%", ds.pendant_fraction * 100.0);
    println!(
        "clustering:  {:.4}",
        pcod::graph::stats::global_clustering_coefficient(csr)
    );
    println!(
        "assortativity: {:.4}",
        pcod::graph::stats::degree_assortativity(csr)
    );
    println!(
        "pseudo-diameter: {}",
        pcod::graph::stats::pseudo_diameter(csr)
    );
    let dendro = build_hierarchy(csr, Linkage::Average);
    println!("hierarchy:   avg |H(q)| = {:.1}", dendro.avg_chain_len());
    Ok(())
}

/// The CODX version `--codx-version` asks for (default: v3, the
/// sectioned mmap-able format). Shared by `cod index` and the
/// corrupt-index rebuild path, so a rebuild resaves in the version the
/// user originally requested.
fn requested_codx_version(opts: &Opts) -> u32 {
    opts.codx_version.unwrap_or(pcod::cod::CODX_V3)
}

/// Builds a CODL engine, loading the HIMOR index from `--index` when one is
/// given and usable. Unusable index files (missing, corrupt, stale version,
/// wrong graph) are fatal under `--strict-index`; otherwise they trigger a
/// rebuild and an atomic resave (in the `--codx-version` the caller
/// requested), with a warning on stderr.
fn build_codl<'g, R: Rng>(
    g: &'g AttributedGraph,
    cfg: CodConfig,
    opts: &Opts,
    rng: &mut R,
) -> Result<Codl<'g>, String> {
    let Some(path) = &opts.index else {
        return Ok(Codl::new(g, cfg, rng));
    };
    match try_load_codl(g, cfg, path, opts.mmap) {
        Ok(codl) => {
            eprintln!("loaded HIMOR index from {}", path.display());
            Ok(codl)
        }
        Err(why) => {
            if opts.strict_index {
                return Err(format!("index {}: {why}", path.display()));
            }
            eprintln!(
                "warning: index {} unusable ({why}); rebuilding",
                path.display()
            );
            let codl = Codl::new(g, cfg, rng);
            let (dendro, _) = codl.hierarchy();
            match save_index_versioned(path, g, dendro, codl.index(), requested_codx_version(opts))
            {
                Ok(()) => eprintln!("saved rebuilt index to {}", path.display()),
                Err(e) => eprintln!("warning: could not save rebuilt index: {e}"),
            }
            Ok(codl)
        }
    }
}

/// Loads a saved index and validates it against the loaded graph. With
/// `mmap`, a CODX v3 file is memory-mapped and its sections are verified
/// lazily; otherwise the bytes are read eagerly (either format).
fn try_load_codl<'g>(
    g: &'g AttributedGraph,
    cfg: CodConfig,
    path: &Path,
    mmap: bool,
) -> Result<Codl<'g>, String> {
    let (dendro, index) = if mmap {
        let arts = MappedArtifacts::open(path).map_err(|e| e.to_string())?;
        let hier = arts.hierarchy().map_err(|e| e.to_string())?;
        let index = arts.himor().map_err(|e| e.to_string())?;
        (hier.dendro.clone(), (*index).clone())
    } else {
        load_index(path).map_err(|e| e.to_string())?
    };
    if index.num_nodes() != g.num_nodes() {
        return Err(format!(
            "index covers {} nodes but the graph has {}",
            index.num_nodes(),
            g.num_nodes()
        ));
    }
    let lca = LcaIndex::new(&dendro);
    Ok(Codl::from_parts(g, cfg, dendro, lca, index))
}

/// `cod index`: build the hierarchy + HIMOR index for a graph and persist
/// them to `--index` in the requested CODX version (v3 by default — the
/// sectioned format `--mmap` serving requires).
fn cmd_index(opts: &Opts) -> Result<(), String> {
    let path = opts
        .index
        .as_ref()
        .ok_or("index needs --index FILE (the output path)")?;
    let g = opts.load_graph()?;
    let cfg = opts.cod_config();
    let version = requested_codx_version(opts);
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let codl = Codl::new(&g, cfg, &mut rng);
    let (dendro, _) = codl.hierarchy();
    save_index_versioned(path, &g, dendro, codl.index(), version).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved CODX v{version} index to {} ({bytes} bytes, {} nodes)",
        path.display(),
        g.num_nodes()
    );
    Ok(())
}

/// Node-range check shared by the commands that index per-node data (the
/// engine validates too, but `resolve_attr` reads `q`'s attribute list
/// before any engine call).
fn check_node(g: &AttributedGraph, q: NodeId) -> Result<(), String> {
    if (q as usize) < g.num_nodes() {
        Ok(())
    } else {
        Err(format!(
            "node {q} out of range (graph has {} nodes)",
            g.num_nodes()
        ))
    }
}

/// Graph source for `cod query`: the usual `--edges`/`--preset` ladder,
/// or — with `--mmap` and no graph source — the graph section of the
/// `--index` CODX v3 artifact itself (the same rung `cod serve` uses).
/// The clone shares the file mapping; no eager copy is made.
fn load_query_graph(opts: &Opts) -> Result<AttributedGraph, String> {
    if opts.mmap && opts.edges.is_none() && opts.preset.is_none() {
        let path = opts
            .index
            .as_ref()
            .ok_or("--mmap needs --index FILE (a CODX v3 artifact)")?;
        let arts = MappedArtifacts::open(path).map_err(|e| e.to_string())?;
        return Ok((*arts.graph().map_err(|e| e.to_string())?).clone());
    }
    opts.load_graph()
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let g = load_query_graph(opts)?;
    let cfg = opts.cod_config();
    let method = opts.method.as_deref().unwrap_or("codl");
    if opts.index.is_some() && method != "codl" {
        return Err(format!(
            "--index only applies to --method codl, not {method:?}"
        ));
    }
    if let Some(path) = &opts.queries {
        if opts.node.is_some() {
            return Err("--node and --queries are mutually exclusive".into());
        }
        return cmd_query_batch(opts, &g, cfg, method, path);
    }
    let q = opts.node.ok_or("query needs --node or --queries")?;
    check_node(&g, q)?;
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let attr = opts.resolve_attr(&g, q);
    // Keep the facade alive past the answer so --metrics-out can read the
    // engine's registry after the query completes.
    let codu;
    let codr;
    let codl_minus;
    let codl;
    let (answer, engine): (_, &CodEngine) = match method {
        "codu" => {
            codu = Codu::new(&g, cfg);
            (codu.query(q, &mut rng), codu.engine())
        }
        "codr" => {
            codr = Codr::new(&g, cfg);
            (codr.query(q, attr?, &mut rng), codr.engine())
        }
        "codl-" => {
            codl_minus = CodlMinus::new(&g, cfg);
            (codl_minus.query(q, attr?, &mut rng), codl_minus.engine())
        }
        "codl" => {
            codl = build_codl(&g, cfg, opts, &mut rng)?;
            (codl.query(q, attr?, &mut rng), codl.engine())
        }
        other => return Err(format!("unknown method {other:?} (codu|codr|codl-|codl)")),
    };
    // A failed query must still flush --metrics-out before the error
    // propagates: the registry records the failure (cod_errors_total), and
    // metrics matter most exactly when something went wrong.
    let outcome = match answer {
        Err(e) => Err(e.to_string()),
        Ok(None) => {
            println!("no community where node {q} is top-{}", cfg.k);
            Ok(())
        }
        Ok(Some(ans)) => {
            println!(
                "characteristic community of node {q}: {} members, rank {} (via {:?})",
                ans.size(),
                ans.rank,
                ans.source
            );
            if let Some(rung) = ans.degraded {
                println!(
                    "note: a query limit fired; the answer was served by the \
                     {rung:?} rung of the degradation ladder (best-effort)"
                );
            } else if ans.uncertain {
                println!(
                    "note: best-effort answer (sample budget truncated the evaluation); \
                     raise or drop --budget for a firm answer"
                );
            }
            println!(
                "topology density {:.4}, conductance {:.4}",
                measures::topology_density(g.csr(), &ans.members),
                measures::conductance(g.csr(), &ans.members),
            );
            let shown = ans.members.len().min(40);
            println!("members[..{shown}]: {:?}", &ans.members[..shown]);
            if let Some(trace) = &ans.trace {
                println!("{}", trace.render_line());
            }
            Ok(())
        }
    };
    write_metrics(opts, engine)?;
    outcome
}

/// Writes the engine's Prometheus-style metrics to `--metrics-out`, when
/// given.
fn write_metrics(opts: &Opts, engine: &CodEngine) -> Result<(), String> {
    write_metrics_text(opts, engine.metrics_text())
}

/// [`write_metrics`] over an already-rendered exposition (the sharded
/// handle renders its own, with the `cod_shard_*` series appended).
fn write_metrics_text(opts: &Opts, text: String) -> Result<(), String> {
    let Some(path) = &opts.metrics_out else {
        return Ok(());
    };
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("wrote metrics to {}", path.display());
    Ok(())
}

fn parse_method(m: &str) -> Result<Method, String> {
    match m {
        "codu" => Ok(Method::Codu),
        "codr" => Ok(Method::Codr),
        "codl-" => Ok(Method::CodlMinus),
        "codl" => Ok(Method::Codl),
        other => Err(format!("unknown method {other:?} (codu|codr|codl-|codl)")),
    }
}

/// Resolves an attribute given by name or numeric id.
fn resolve_attr_name(g: &AttributedGraph, name: &str) -> Result<AttrId, String> {
    if let Some(id) = g.interner().get(name) {
        return Ok(id);
    }
    name.parse()
        .map_err(|_| format!("unknown attribute {name:?}"))
}

/// Parses one non-blank batch line (`node[,attr]`) into a [`Query`].
fn parse_batch_line(
    opts: &Opts,
    g: &AttributedGraph,
    method: Method,
    line: &str,
) -> Result<Query, String> {
    let mut parts = line.splitn(2, ',');
    let node: NodeId = parts
        .next()
        .unwrap_or("")
        .trim()
        .parse()
        .map_err(|_| format!("bad node id in {line:?}"))?;
    check_node(g, node)?;
    // CODU ignores attributes; for the rest, the line's attribute wins,
    // then --attr, then the node's first attribute.
    let attr = if method == Method::Codu {
        None
    } else {
        let named = parts.next().map(str::trim).filter(|s| !s.is_empty());
        let id = match named.or(opts.attr.as_deref()) {
            Some(name) => resolve_attr_name(g, name)?,
            None => g.node_attrs(node).first().copied().ok_or_else(|| {
                format!("node {node} has no attributes; append \",attr\" or pass --attr")
            })?,
        };
        Some(id)
    };
    Ok(Query { node, attr, method })
}

/// Batch query mode: one `node[,attr]` per line, answered through a single
/// shared [`CodEngine`] so repeat-attribute queries reuse cached
/// reclusterings. Malformed lines and per-query failures are reported
/// inline and never stop the rest of the batch — the valid queries still
/// run and `--metrics-out` still flushes — but malformed input fails the
/// exit code once everything has been served.
fn cmd_query_batch(
    opts: &Opts,
    g: &AttributedGraph,
    cfg: CodConfig,
    method_name: &str,
    path: &Path,
) -> Result<(), String> {
    let method = parse_method(method_name)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut queries = Vec::new();
    let mut bad_lines = 0usize;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_batch_line(opts, g, method, line) {
            Ok(query) => queries.push(query),
            Err(msg) => {
                println!("{}:{}: error: {msg}", path.display(), no + 1);
                bad_lines += 1;
            }
        }
    }
    let malformed = || format!("{}: {bad_lines} malformed line(s)", path.display());
    if queries.is_empty() {
        return Err(if bad_lines == 0 {
            format!("{}: no queries", path.display())
        } else {
            malformed()
        });
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // CODL goes through the facade so --index load/rebuild/save applies;
    // either way one engine serves the whole batch.
    let codl_facade;
    let plain_engine;
    let engine: &CodEngine = if method == Method::Codl {
        codl_facade = build_codl(g, cfg, opts, &mut rng)?;
        codl_facade.engine()
    } else {
        plain_engine = CodEngine::new(g.clone(), cfg);
        &plain_engine
    };

    // Batch summary tallies: degraded answers are counted separately from
    // clean answers and from errors — a degraded answer is still served.
    let (mut answered, mut degraded, mut none, mut errors) = (0usize, 0usize, 0usize, 0usize);
    for (query, result) in queries.iter().zip(engine.query_batch(&queries, &mut rng)) {
        let q = query.node;
        match result {
            Err(e) => {
                errors += 1;
                println!("node {q}: error: {e}");
            }
            Ok(None) => {
                none += 1;
                println!("node {q}: no community where it is top-{}", cfg.k);
            }
            Ok(Some(ans)) => {
                let cache = match ans.cache {
                    Some(CacheOutcome::Hit) => ", cache hit",
                    Some(CacheOutcome::Miss) => ", cache miss",
                    None => "",
                };
                let flag = match ans.degraded {
                    Some(rung) => {
                        degraded += 1;
                        format!(" [degraded: served by {rung:?}]")
                    }
                    None => {
                        answered += 1;
                        if ans.uncertain {
                            " [best-effort]".to_string()
                        } else {
                            String::new()
                        }
                    }
                };
                println!(
                    "node {q}: {} members, rank {} (via {:?}{cache}){flag}",
                    ans.size(),
                    ans.rank,
                    ans.source,
                );
                if let Some(trace) = &ans.trace {
                    println!("  {}", trace.render_line());
                }
            }
        }
    }
    eprintln!(
        "batch summary: {answered} answered, {degraded} degraded, {none} without community, \
         {errors} errors"
    );
    let stats = engine.cache_stats();
    eprintln!(
        "recluster cache: {} hits / {} misses ({:.0}% hit rate, {} resident)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.len,
    );
    write_metrics(opts, engine)?;
    if bad_lines > 0 {
        return Err(malformed());
    }
    Ok(())
}

fn cmd_hierarchy(opts: &Opts) -> Result<(), String> {
    let g = opts.load_graph()?;
    let q = opts.node.ok_or("hierarchy needs --node")?;
    check_node(&g, q)?;
    let cfg = opts.cod_config();
    let dendro = build_hierarchy(g.csr(), cfg.linkage);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, q).map_err(|e| e.to_string())?;
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let out = if cfg.parallelism.is_seeded() {
        compressed_cod_seeded(
            g.csr(),
            cfg.model,
            &chain,
            q,
            cfg.k,
            cfg.theta,
            rng.next_u64(),
            cfg.parallelism,
        )
    } else {
        compressed_cod(g.csr(), cfg.model, &chain, q, cfg.k, cfg.theta, &mut rng)
    }
    .map_err(|e| e.to_string())?;
    println!("node {q}: |H(q)| = {} communities", chain.len());
    println!("level | size     | rank(q) | top-{}?", cfg.k);
    for h in 0..chain.len().min(opts.levels) {
        println!(
            "{h:5} | {:8} | {:7} | {}",
            chain.size(h),
            out.ranks[h],
            if out.ranks[h] <= cfg.k { "yes" } else { "no" }
        );
    }
    if chain.len() > opts.levels {
        println!(
            "... ({} more levels; raise --levels)",
            chain.len() - opts.levels
        );
    }
    Ok(())
}

fn cmd_baseline(opts: &Opts) -> Result<(), String> {
    let g = opts.load_graph()?;
    let q = opts.node.ok_or("baseline needs --node")?;
    check_node(&g, q)?;
    let attr = opts.resolve_attr(&g, q)?;
    let method = opts
        .method
        .as_deref()
        .ok_or("baseline needs --method acq|atc|cac")?;
    let community = match method {
        "acq" => pcod::search::acq_query(&g, q, attr, 2),
        "atc" => pcod::search::atc_query(&g, q, attr, Default::default()),
        "cac" => pcod::search::cac_query(&g, q, attr),
        other => return Err(format!("unknown baseline {other:?}")),
    };
    match community {
        None => println!("{method}: no community for node {q}"),
        Some(c) => {
            println!("{method}: {} members", c.len());
            println!(
                "topology density {:.4}, attribute density {:.4}",
                measures::topology_density(g.csr(), &c),
                measures::attribute_density(&g, &c, attr),
            );
            let shown = c.len().min(40);
            println!("members[..{shown}]: {:?}", &c[..shown]);
        }
    }
    Ok(())
}

fn cmd_im(opts: &Opts) -> Result<(), String> {
    use pcod::influence::RrPool;
    let g = opts.load_graph()?;
    let cfg = opts.cod_config();
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // Scope: whole graph, or the characteristic community of --node.
    let members: Option<Vec<NodeId>> = match opts.node {
        None => None,
        Some(q) => {
            check_node(&g, q)?;
            let attr = opts.resolve_attr(&g, q)?;
            let codl = Codl::new(&g, cfg, &mut rng);
            match codl.query(q, attr, &mut rng).map_err(|e| e.to_string())? {
                Some(ans) => {
                    println!(
                        "scoping to the characteristic community of node {q} ({} members)",
                        ans.size()
                    );
                    Some(ans.members)
                }
                None => {
                    return Err(format!(
                        "node {q} has no characteristic community at k = {};                          drop --node for whole-graph seeds",
                        cfg.k
                    ))
                }
            }
        }
    };
    let theta = cfg.theta.max(20) * members.as_ref().map_or(g.num_nodes(), Vec::len);
    let pool = if cfg.parallelism.is_seeded() {
        RrPool::sample_seeded(
            g.csr(),
            cfg.model,
            theta,
            SeedSequence::new(rng.next_u64()),
            members.as_deref(),
            cfg.parallelism,
        )
    } else {
        RrPool::sample(g.csr(), cfg.model, theta, &mut rng, members.as_deref())
    };
    let seeds = pool.greedy_seeds(cfg.k);
    println!("greedy seeds (marginal estimated influence):");
    for (i, (v, gain)) in seeds.iter().enumerate() {
        println!("  {}. node {v:6}  +{gain:.2}", i + 1);
    }
    let total: Vec<NodeId> = seeds.iter().map(|&(v, _)| v).collect();
    println!("joint estimated influence: {:.2}", pool.estimate(&total));
    Ok(())
}

/// `cod serve`: stand up the HTTP serving tier on `--addr` and run until a
/// SIGTERM/SIGINT arrives, then drain gracefully. The bound address is
/// printed on stdout (`serving on http://…`) so scripts can target an
/// ephemeral port; the shutdown report (drain outcome + request counters)
/// goes to stderr, and `--metrics-out` flushes the engine's final metrics
/// after the drain completes.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use std::io::Write as _;

    let serve_cfg = serve_config(opts);

    // Durable serving: recover the --wal directory on a background thread
    // while /readyz answers 503 RECOVERING, then promote the listener to
    // the full server over the recovered artifacts.
    if let Some(dir) = &opts.wal {
        if opts.mmap || opts.shards.unwrap_or(1) > 1 {
            return Err("--wal serving is single-engine: drop --mmap and --shards".into());
        }
        let cfg = opts.seeded_cod_config();
        let dcfg = opts.durability_config()?;
        let dir = dir.clone();
        pcod::serve::signal::install_shutdown_handler();
        let recovering = pcod::serve::serve_recovering(serve_cfg, move || {
            let (mut durable, report) = pcod::cod::DurableCod::open(&dir, cfg, dcfg)?;
            let bytes = durable.snapshot_bytes()?;
            let arts = MappedArtifacts::from_vec(bytes)?;
            let engine =
                CodEngine::from_shared_parts(arts.graph()?, cfg, arts.hierarchy()?, arts.himor()?);
            engine.record_recovery(report.replayed, report.wall_time.as_nanos() as u64);
            eprintln!(
                "recovered {} event(s) over checkpoint {} in {:.2?}{}{}",
                report.replayed,
                durable.manifest().snapshot,
                report.wall_time,
                match report.torn_tail {
                    Some(t) => format!(" (torn tail: {} byte(s) truncated)", t.dropped_bytes),
                    None => String::new(),
                },
                if report.swept_temps > 0 {
                    format!(" ({} stale temp file(s) swept)", report.swept_temps)
                } else {
                    String::new()
                },
            );
            Ok(EngineHandle::Single(Arc::new(engine)))
        })
        .map_err(|e| format!("binding listener: {e}"))?;
        println!("recovering; serving on http://{}", recovering.addr());
        let _ = std::io::stdout().flush();
        eprintln!("endpoints: /query /query_batch /metrics /healthz /readyz (SIGTERM drains)");
        let handle = recovering
            .wait_ready()
            .map_err(|e| format!("recovery failed: {e}"))?;
        return run_until_shutdown(handle, opts);
    }

    let cfg = opts.cod_config();
    let shards = opts.shards.unwrap_or(1).max(1);
    // Engine source ladder: --mmap serves straight out of a CODX v3
    // artifact file (graph included — no --edges/--preset needed);
    // otherwise the graph loads from its usual source and artifacts build
    // in-process. --shards picks the sharded fleet either way.
    let engine = if opts.mmap {
        let path = opts
            .index
            .as_ref()
            .ok_or("--mmap needs --index FILE (a CODX v3 artifact)")?;
        let arts = MappedArtifacts::open(path).map_err(|e| e.to_string())?;
        eprintln!(
            "mapped {} ({} bytes, {} nodes, {})",
            path.display(),
            arts.file_bytes(),
            arts.num_nodes(),
            if arts.is_mapped() {
                "zero-copy"
            } else {
                "eager-load fallback"
            }
        );
        if shards > 1 {
            let sharded =
                ShardedEngine::from_mapped(&arts, cfg, shards).map_err(|e| e.to_string())?;
            EngineHandle::Sharded(Arc::new(sharded))
        } else {
            EngineHandle::Single(Arc::new(
                CodEngine::from_mapped(&arts, cfg).map_err(|e| e.to_string())?,
            ))
        }
    } else {
        let g = opts.load_graph()?;
        if shards > 1 {
            let mut rng = SmallRng::seed_from_u64(opts.seed);
            let sharded = ShardedEngine::build(Arc::new(g), cfg, shards, &mut rng);
            EngineHandle::Sharded(Arc::new(sharded))
        } else {
            EngineHandle::Single(Arc::new(CodEngine::new(g, cfg)))
        }
    };
    if let EngineHandle::Sharded(s) = &engine {
        eprintln!(
            "sharded serving: {} shard(s), node distribution {:?}",
            s.num_shards(),
            s.partition().shard_sizes()
        );
    }
    // Install the handler before binding so a signal racing startup still
    // lands in the flag the loop below polls.
    pcod::serve::signal::install_shutdown_handler();
    let handle = pcod::serve::serve_handle(engine, serve_cfg)
        .map_err(|e| format!("binding listener: {e}"))?;
    println!("serving on http://{}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!("endpoints: /query /query_batch /metrics /healthz /readyz (SIGTERM drains)");
    run_until_shutdown(handle, opts)
}

fn serve_config(opts: &Opts) -> pcod::serve::ServeConfig {
    let serve_cfg = pcod::serve::ServeConfig {
        addr: opts.addr.clone().unwrap_or_else(|| "127.0.0.1:7700".into()),
        workers: opts.workers.unwrap_or(2).max(1),
        accept_queue: opts.accept_queue.unwrap_or(16).max(1),
        drain_deadline: Duration::from_millis(opts.drain_ms.unwrap_or(5_000)),
        seed: opts.seed,
        ..pcod::serve::ServeConfig::default()
    };
    pcod::serve::ServeConfig {
        max_request_bytes: opts
            .max_request_bytes
            .unwrap_or(serve_cfg.max_request_bytes),
        // --deadline-ms doubles as the serve default for requests that do
        // not carry their own deadline (the engine-side limit built by
        // cod_config() applies regardless, so requests can only tighten it).
        default_deadline: opts
            .deadline_ms
            .map(Duration::from_millis)
            .or(serve_cfg.default_deadline),
        ..serve_cfg
    }
}

/// The serve main loop shared by the plain and durable startup paths:
/// wait for the shutdown signal, drain, report, flush metrics.
fn run_until_shutdown(handle: pcod::serve::ServerHandle, opts: &Opts) -> Result<(), String> {
    let engine = handle.engine().clone();
    while !pcod::serve::signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown signal received; draining in-flight requests");
    let report = handle.shutdown();
    let stats = &report.http_stats;
    eprintln!(
        "drain {}: {} request(s) served, {} shed at socket, {} shed by engine, \
         {} rejected while draining, {} worker panic(s)",
        if report.drained_in_time {
            "completed in time"
        } else {
            "overran the deadline (stragglers degraded via the kill switch)"
        },
        stats.requests,
        stats.shed_socket,
        stats.shed_engine,
        stats.draining_rejects,
        stats.panics,
    );
    write_metrics_text(opts, engine.metrics_text())?;
    Ok(())
}

/// The replay target behind `cod mutate`: the plain in-memory pipeline or
/// the WAL-backed durable wrapper (`--wal DIR`).
enum Replayer {
    Plain(Box<pcod::cod::DynamicCod>),
    Durable(Box<pcod::cod::DurableCod>),
}

impl Replayer {
    fn apply(&mut self, m: &pcod::cod::mutation::Mutation) -> Result<bool, pcod::cod::CodError> {
        match self {
            Replayer::Plain(d) => d.apply(m),
            Replayer::Durable(d) => d.apply(m),
        }
    }

    fn flush(&mut self, seed: u64) -> Result<pcod::cod::MutationFlushReport, pcod::cod::CodError> {
        match self {
            Replayer::Plain(d) => {
                let mut rng = SmallRng::seed_from_u64(seed);
                d.flush(&mut rng)
            }
            Replayer::Durable(d) => d.flush(),
        }
    }

    fn inner(&self) -> &pcod::cod::DynamicCod {
        match self {
            Replayer::Plain(d) => d,
            Replayer::Durable(d) => d.engine(),
        }
    }
}

fn cmd_mutate(opts: &Opts) -> Result<(), String> {
    use pcod::cod::mutation::{Mutation, MutationLog};
    use pcod::cod::{CodError, DurableCod, DynamicCod, FlushOutcome};

    let g = opts.load_graph()?;
    let log_path = opts.log.as_ref().ok_or("mutate needs --log FILE")?;
    let text = std::fs::read_to_string(log_path)
        .map_err(|e| format!("reading {}: {e}", log_path.display()))?;
    let log = MutationLog::parse_text(&text).map_err(|e| e.to_string())?;
    // Seeded by default: the replay is then a pure function of the log and
    // --seed, bit-identical at every thread count, and single edits repair
    // the hierarchy in place instead of rebuilding it.
    let cfg = opts.seeded_cod_config();
    let mut replayer = match &opts.wal {
        None => Replayer::Plain(Box::new(DynamicCod::with_seed(&g, cfg, opts.seed))),
        Some(dir) => {
            let dcfg = opts.durability_config()?;
            if DurableCod::exists(dir) {
                let (d, report) = DurableCod::open(dir, cfg, dcfg).map_err(|e| e.to_string())?;
                eprintln!(
                    "recovered {} ({} checkpointed + {} replayed event(s)) in {:.2?}",
                    dir.display(),
                    report.checkpoint_events,
                    report.replayed,
                    report.wall_time
                );
                Replayer::Durable(Box::new(d))
            } else {
                let d =
                    DurableCod::create(dir, &g, cfg, opts.seed, dcfg).map_err(|e| e.to_string())?;
                eprintln!("created durable state in {}", dir.display());
                Replayer::Durable(Box::new(d))
            }
        }
    };
    println!(
        "replaying {} events from {} against {} nodes / {} edges (seed {})",
        log.len(),
        log_path.display(),
        g.num_nodes(),
        g.num_edges(),
        opts.seed
    );
    let started = std::time::Instant::now();
    // On failure, report exactly how far the replay got — which event
    // failed and how many landed — via the typed ReplayHalted error.
    let halt = |applied: usize, failed_event: usize, cause: CodError| {
        CodError::ReplayHalted {
            applied,
            failed_event,
            cause: Box::new(cause),
        }
        .to_string()
    };
    for (i, m) in log.events().iter().enumerate() {
        let label = match m {
            Mutation::InsertEdge { u, v } => format!("add {u} {v}"),
            Mutation::RemoveEdge { u, v } => format!("del {u} {v}"),
            Mutation::SetAttrs { node, attrs } => format!(
                "attrs {node} {}",
                attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let applied = replayer.apply(m).map_err(|e| halt(i, i + 1, e))?;
        if !applied {
            println!(
                "[{:>4}] {label:<24} -> no-op (edge already in that state)",
                i + 1
            );
            continue;
        }
        let report = replayer
            .flush(opts.seed)
            .map_err(|e| halt(i + 1, i + 1, e))?;
        let outcome = match report.outcome {
            FlushOutcome::Noop => "no-op".to_string(),
            FlushOutcome::Refreshed => "refreshed (hierarchy + index untouched)".to_string(),
            FlushOutcome::Repaired {
                spliced,
                samples_redrawn,
                samples_total,
            } => format!(
                "repaired ({}, {samples_redrawn}/{samples_total} samples redrawn)",
                if spliced { "spliced" } else { "recomputed" }
            ),
            FlushOutcome::Rebuilt => "full rebuild".to_string(),
        };
        println!("[{:>4}] {label:<24} -> {outcome}", i + 1);
    }
    let snap = replayer.inner().metrics_snapshot();
    println!(
        "\nreplayed {} events in {:.2?}: {} repairs, {} full rebuilds, {} pools evicted (scoped)",
        log.len(),
        started.elapsed(),
        snap.repairs,
        snap.full_rebuilds,
        snap.pool_scoped_evictions
    );
    println!(
        "final graph: {} nodes, {} edges",
        replayer.inner().num_nodes(),
        replayer.inner().num_edges()
    );
    if let Replayer::Durable(d) = &mut replayer {
        d.flush_wal().map_err(|e| e.to_string())?;
        println!(
            "durable state: {} event(s) total, {} in the live WAL over {} \
             ({} WAL append(s), {} fsync(s))",
            d.events_total(),
            d.wal_records(),
            d.manifest().snapshot,
            snap.wal_appended_records,
            snap.wal_fsyncs,
        );
    }
    Ok(())
}

fn cmd_recover(opts: &Opts) -> Result<(), String> {
    use pcod::cod::DurableCod;

    let dir = opts.wal.as_ref().ok_or("recover needs --wal DIR")?;
    let cfg = opts.seeded_cod_config();
    let dcfg = opts.durability_config()?;
    let (mut durable, report) = DurableCod::open(dir, cfg, dcfg).map_err(|e| e.to_string())?;
    println!(
        "recovered {}: checkpoint {} ({} event(s)) + {} WAL event(s) replayed in {:.2?}",
        dir.display(),
        durable.manifest().snapshot,
        report.checkpoint_events,
        report.replayed,
        report.wall_time
    );
    if let Some(t) = report.torn_tail {
        println!(
            "torn tail truncated: {} byte(s) dropped past offset {}",
            t.dropped_bytes, t.valid_offset
        );
    }
    if report.swept_temps > 0 {
        println!("swept {} stale temp file(s)", report.swept_temps);
    }
    let bytes = durable.snapshot_bytes().map_err(|e| e.to_string())?;
    println!(
        "recovered state: {} nodes, {} edges, {} event(s) total ({} bytes canonical)",
        durable.engine().num_nodes(),
        durable.engine().num_edges(),
        durable.events_total(),
        bytes.len()
    );
    if let Some(path) = &opts.index {
        std::fs::write(path, &bytes).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote recovered artifacts to {}", path.display());
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let name = opts.preset.as_deref().ok_or("generate needs --preset")?;
    let data = pcod::datasets::by_name(name, opts.seed)
        .ok_or_else(|| format!("unknown preset {name:?}"))?;
    let edges_path = opts
        .out_edges
        .as_ref()
        .ok_or("generate needs --out-edges")?;
    let f = std::fs::File::create(edges_path).map_err(|e| e.to_string())?;
    io::write_edge_list(data.graph.csr(), f).map_err(|e| e.to_string())?;
    println!(
        "wrote {} edges to {}",
        data.graph.num_edges(),
        edges_path.display()
    );
    if let Some(attrs_path) = &opts.out_attrs {
        let f = std::fs::File::create(attrs_path).map_err(|e| e.to_string())?;
        io::write_attr_list(&data.graph, f).map_err(|e| e.to_string())?;
        println!("wrote attributes to {}", attrs_path.display());
    }
    Ok(())
}
