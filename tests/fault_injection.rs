//! Fault-injection tests for the persistence layer.
//!
//! Three attack surfaces, per the robustness contract in
//! `cod_core::persist`:
//!
//! 1. **Write failures** — a writer that errors after N bytes must surface
//!    as `CodError::Io`, and an interrupted [`save_index`] must never leave
//!    a half-written file where a previous index existed.
//! 2. **Read failures** — a reader that errors after N bytes must surface
//!    as `CodError::Io`.
//! 3. **Bit rot** — *every* single-byte corruption of a saved image must
//!    yield `Err(CodError::IndexCorrupt)`: never a panic, never an
//!    oversized allocation, never a silently wrong index.

use std::io::{Read, Write};

use pcod::cod::persist::{
    load_index, load_index_bytes, read_index_from, save_index, serialize_index, write_index_to,
};
use pcod::cod::recluster::build_hierarchy;
use pcod::prelude::*;
use rand::prelude::*;

/// A writer that fails with `ErrorKind::Other` once `limit` bytes passed.
struct FailingWriter {
    written: usize,
    limit: usize,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let room = self.limit.saturating_sub(self.written);
        if room == 0 {
            return Err(std::io::Error::other("injected write failure"));
        }
        let n = buf.len().min(room);
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A reader that fails with `ErrorKind::Other` once `limit` bytes passed.
struct FailingReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    limit: usize,
}

impl Read for FailingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.limit {
            return Err(std::io::Error::other("injected read failure"));
        }
        let end = self.bytes.len().min(self.limit);
        let n = buf.len().min(end - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A small but structurally interesting index: two communities of unequal
/// size joined by a bridge.
fn small_index() -> (Dendrogram, HimorIndex) {
    let mut b = GraphBuilder::new(12);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)] {
        b.add_edge(u, v);
    }
    b.add_edge(2, 3);
    for v in 7..12 {
        b.add_edge(6, v);
    }
    let g = b.build();
    let dendro = build_hierarchy(&g, Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(77);
    let index = HimorIndex::build(&g, Model::WeightedCascade, &dendro, &lca, 20, &mut rng);
    (dendro, index)
}

#[test]
fn write_failure_at_every_byte_boundary_is_an_io_error() {
    let (dendro, index) = small_index();
    let image = serialize_index(&dendro, &index).unwrap();
    // Fail at byte 0, mid-header, mid-payload, and one short of complete.
    for limit in [0, 1, 7, image.len() / 2, image.len() - 1] {
        let mut w = FailingWriter { written: 0, limit };
        let err = write_index_to(&mut w, &dendro, &index)
            .expect_err("truncated write must not report success");
        assert!(
            matches!(err, CodError::Io(_)),
            "limit {limit}: expected Io, got {err}"
        );
    }
    // Sanity: an unbounded writer succeeds.
    let mut w = FailingWriter {
        written: 0,
        limit: usize::MAX,
    };
    write_index_to(&mut w, &dendro, &index).unwrap();
    assert_eq!(w.written, image.len());
}

#[test]
fn read_failure_at_every_byte_boundary_is_an_io_error() {
    let (dendro, index) = small_index();
    let image = serialize_index(&dendro, &index).unwrap();
    for limit in [0, 3, 11, image.len() / 2, image.len() - 1] {
        let mut r = FailingReader {
            bytes: &image,
            pos: 0,
            limit,
        };
        let err = read_index_from(&mut r).expect_err("truncated read must not report success");
        assert!(
            matches!(err, CodError::Io(_)),
            "limit {limit}: expected Io, got {err}"
        );
    }
    let mut r = FailingReader {
        bytes: &image,
        pos: 0,
        limit: usize::MAX,
    };
    let (d2, i2) = read_index_from(&mut r).unwrap();
    assert_eq!(d2.num_leaves(), dendro.num_leaves());
    assert_eq!(i2.theta(), index.theta());
}

#[test]
fn every_single_byte_flip_is_detected_as_corruption() {
    let (dendro, index) = small_index();
    let image = serialize_index(&dendro, &index).unwrap();
    // Deterministic exhaustive fuzz: flip the low bit and all bits of every
    // byte. Each mutant must fail with IndexCorrupt — no panic (the test
    // process would abort), no success, and bounded allocation throughout
    // (corrupt length fields are checked against the image size before any
    // reservation).
    let mut checked = 0usize;
    for pos in 0..image.len() {
        for delta in [0x01u8, 0xFF] {
            let mut mutant = image.clone();
            mutant[pos] ^= delta;
            match load_index_bytes(&mutant) {
                Err(CodError::IndexCorrupt(_)) => checked += 1,
                Err(other) => panic!("byte {pos} ^ {delta:#04x}: wrong error class: {other}"),
                Ok(_) => panic!("byte {pos} ^ {delta:#04x}: corruption went undetected"),
            }
        }
    }
    assert_eq!(checked, image.len() * 2);
}

#[test]
fn every_truncation_is_detected_as_corruption() {
    let (dendro, index) = small_index();
    let image = serialize_index(&dendro, &index).unwrap();
    for len in 0..image.len() {
        match load_index_bytes(&image[..len]) {
            Err(CodError::IndexCorrupt(_)) => {}
            Err(other) => panic!("prefix of {len}: wrong error class: {other}"),
            Ok(_) => panic!("prefix of {len} accepted"),
        }
    }
}

#[test]
fn interrupted_save_never_clobbers_the_previous_index() {
    let (dendro, index) = small_index();
    // A target whose *temp sibling* exceeds NAME_MAX: creating the temp
    // file fails deterministically (works even as root, unlike permission
    // tricks), modelling a failure before any byte reaches the target.
    let dir = std::env::temp_dir().join(format!("cod_fault_atomic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join(format!("{}.codx", "x".repeat(245)));

    // Seed the previous index directly (save_index would hit the same
    // injected failure).
    let image = serialize_index(&dendro, &index).unwrap();
    std::fs::write(&target, &image).unwrap();

    let err = save_index(&target, &dendro, &index).expect_err("temp creation must fail");
    assert!(matches!(err, CodError::Io(_)), "expected Io, got {err}");

    // The previous index is byte-identical and still loads.
    assert_eq!(std::fs::read(&target).unwrap(), image);
    let (d2, i2) = load_index(&target).unwrap();
    assert_eq!(d2.num_leaves(), dendro.num_leaves());
    assert_eq!(i2.num_nodes(), index.num_nodes());

    // No temp debris left behind.
    let debris: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(debris.is_empty(), "leftover temp files: {debris:?}");

    std::fs::remove_file(&target).ok();
    std::fs::remove_dir(&dir).ok();
}
