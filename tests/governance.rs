//! Resource-governance suite: deadlines, cooperative cancellation, panic
//! isolation, admission control — driven by the deterministic failpoint
//! harness in `cod_core::failpoint`.
//!
//! The contract under test:
//! * limits that never fire leave answers **bit-identical** to running
//!   without limits (the seed-replay suite sweeps this across thread
//!   counts; here we pin the single-engine case),
//! * a limit that fires produces a **bounded** outcome — a best-effort
//!   answer flagged [`CodAnswer::degraded`]/`uncertain`, or the typed
//!   [`CodError::DeadlineExceeded`] — never a hang,
//! * an injected panic at any site surfaces as [`CodError::Internal`] and
//!   leaves the engine fully serviceable,
//! * admission control sheds excess concurrent batches with the retriable
//!   [`CodError::Overloaded`].
//!
//! Failpoint state is process-global, so every test serializes behind one
//! lock. Injection scenarios are additionally gated on
//! `failpoint::compiled_in()` (failpoints are compiled out of release
//! builds; those tests become no-ops under `--release`).

use pcod::cod::failpoint::{self, Action, Site, SITES};
use pcod::prelude::*;
use rand::prelude::*;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

/// Serializes every test in this file: the failpoint registry and the
/// engine metrics they assert on are process-global.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(120, 8)
}

/// Limits armed but generous enough that no checkpoint can ever trip
/// them: the governed code paths run, the outcome must not change.
fn generous_limits() -> QueryLimits {
    QueryLimits {
        deadline: Some(Duration::from_secs(3600)),
        max_rr_edges: Some(u64::MAX / 2),
        max_memory_bytes: Some(usize::MAX / 2),
    }
}

fn base_cfg() -> CodConfig {
    CodConfig {
        k: 3,
        theta: 10,
        parallelism: Parallelism::Threads(2),
        ..CodConfig::default()
    }
}

/// Every method against a couple of query nodes — enough to drive every
/// failpoint site (CODL builds the index, CODR/CODL⁻ recluster).
fn workload(g: &AttributedGraph) -> Vec<Query> {
    let mut queries = Vec::new();
    for &q in &[0u32, 17] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries
}

/// Strips the unequatable error type for whole-sequence comparison.
fn comparable(
    results: Vec<CodResult<Option<CodAnswer>>>,
) -> Vec<Result<Option<CodAnswer>, String>> {
    results
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect()
}

fn run_workload(cfg: CodConfig, g: &AttributedGraph) -> Vec<Result<Option<CodAnswer>, String>> {
    let engine = CodEngine::new(g.clone(), cfg);
    let mut rng = SmallRng::seed_from_u64(7777);
    comparable(engine.query_batch(&workload(g), &mut rng))
}

/// Generous limits leave every answer bit-identical to the unlimited
/// engine — the governed paths (token polls, charge calls) must not touch
/// the RNG or alter any result.
#[test]
fn generous_limits_answers_match_unlimited_answers() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let unlimited = run_workload(base_cfg(), &data.graph);
    assert!(unlimited.iter().any(|r| matches!(r, Ok(Some(_)))));
    let governed = run_workload(
        CodConfig {
            limits: generous_limits(),
            ..base_cfg()
        },
        &data.graph,
    );
    assert_eq!(governed, unlimited, "never-firing limits changed answers");
    for r in &governed {
        if let Ok(Some(a)) = r {
            assert!(a.degraded.is_none(), "no limit fired, yet {a:?} degraded");
        }
    }
}

/// A zero deadline fires at the first checkpoint of every query. Each
/// result must still be bounded and well-typed: a (possibly degraded)
/// answer or `DeadlineExceeded` — never a hang or a panic.
#[test]
fn zero_deadline_queries_stay_bounded_and_flagged() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let cfg = CodConfig {
        limits: QueryLimits {
            deadline: Some(Duration::ZERO),
            ..QueryLimits::default()
        },
        ..base_cfg()
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let mut rng = SmallRng::seed_from_u64(7777);
    let results = engine.query_batch(&workload(&data.graph), &mut rng);
    let mut fired = 0u64;
    for r in &results {
        match r {
            Ok(Some(a)) => {
                if let Some(rung) = a.degraded {
                    assert!(a.uncertain, "degraded answer must be uncertain: {a:?}");
                    assert!(
                        matches!(rung, Method::Codu | Method::CodlMinus | Method::Codl),
                        "unexpected serving rung {rung:?}"
                    );
                    fired += 1;
                }
            }
            Ok(None) => {}
            Err(CodError::DeadlineExceeded) => fired += 1,
            Err(other) => panic!("zero deadline produced a non-deadline error: {other}"),
        }
    }
    assert!(fired > 0, "a zero deadline never fired on any query");
    let metrics = engine.metrics();
    assert_eq!(
        metrics.answers_degraded,
        results
            .iter()
            .filter(|r| matches!(r, Ok(Some(a)) if a.degraded.is_some()))
            .count() as u64,
        "degraded counter out of sync with flagged answers"
    );
}

/// Delay injections at every site (the `COD_FAILPOINTS=all` baseline)
/// must be invisible in results: checkpoints are draw-order-neutral.
#[test]
fn delay_injection_at_every_site_preserves_answers() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    let data = dataset();
    let cfg = CodConfig {
        limits: generous_limits(),
        ..base_cfg()
    };
    let baseline = run_workload(cfg, &data.graph);
    for site in SITES {
        failpoint::arm(site, Action::Delay(Duration::from_millis(1)));
    }
    let delayed = run_workload(cfg, &data.graph);
    failpoint::disarm_all();
    assert_eq!(delayed, baseline, "delays at checkpoints changed answers");
}

/// An injected panic at each site surfaces as `CodError::Internal` (never
/// escapes, never poisons), and the engine answers the same workload
/// cleanly once the failpoint is disarmed.
#[test]
fn panic_at_every_site_is_isolated_and_recoverable() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    let data = dataset();
    // Silence the default panic hook for *injected* panics only (the
    // engine catches every one of them); genuine test failures still print.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("failpoint"));
        if !injected {
            eprintln!("{info}");
        }
    }));
    for site in SITES {
        failpoint::disarm_all();
        failpoint::arm(site, Action::Panic);
        let engine = CodEngine::new(data.graph.clone(), base_cfg());
        let mut rng = SmallRng::seed_from_u64(7777);
        let poisoned = engine.query_batch(&workload(&data.graph), &mut rng);
        let internals = poisoned
            .iter()
            .filter(|r| matches!(r, Err(CodError::Internal(m)) if m.contains("failpoint")))
            .count();
        assert!(
            internals > 0,
            "{site:?}: armed panic never surfaced as CodError::Internal"
        );
        for r in &poisoned {
            if let Err(e) = r {
                assert!(
                    matches!(e, CodError::Internal(_)),
                    "{site:?}: unexpected error kind {e}"
                );
            }
        }
        // Recovery: disarmed, the same engine must serve the full workload
        // without errors — no cache poisoning, no wedged locks.
        failpoint::disarm_all();
        let mut rng = SmallRng::seed_from_u64(7777);
        let recovered = engine.query_batch(&workload(&data.graph), &mut rng);
        assert!(
            recovered.iter().all(|r| r.is_ok()),
            "{site:?}: engine not serviceable after panic injection: {:?}",
            recovered.iter().find(|r| r.is_err())
        );
        assert!(recovered.iter().any(|r| matches!(r, Ok(Some(_)))));
    }
    std::panic::set_hook(prior_hook);
}

/// Forced cancellation at each site: every query completes with a bounded,
/// typed outcome — a degraded answer or `DeadlineExceeded` — and at least
/// one query per site actually degrades. Afterwards the engine serves
/// undegraded answers again (interrupted artifacts were never cached).
#[test]
fn forced_cancellation_at_every_site_degrades_gracefully() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    let data = dataset();
    for site in SITES {
        failpoint::disarm_all();
        failpoint::arm(site, Action::Cancel);
        // Limits must be armed for a token to exist; generous ones never
        // fire on their own, so every cancellation comes from the injection.
        let cfg = CodConfig {
            limits: generous_limits(),
            ..base_cfg()
        };
        let engine = CodEngine::new(data.graph.clone(), cfg);
        let mut rng = SmallRng::seed_from_u64(7777);
        let results = engine.query_batch(&workload(&data.graph), &mut rng);
        let mut fired = 0u64;
        for r in &results {
            match r {
                Ok(Some(a)) if a.degraded.is_some() => {
                    assert!(a.uncertain, "{site:?}: degraded answer not uncertain");
                    fired += 1;
                }
                Ok(_) => {}
                Err(CodError::DeadlineExceeded) => fired += 1,
                Err(other) => panic!("{site:?}: unexpected error {other}"),
            }
        }
        assert!(fired > 0, "{site:?}: forced cancellation never degraded");
        // Serviceable after: with the injection gone, fresh queries serve
        // at full fidelity on the same engine.
        failpoint::disarm_all();
        let mut rng = SmallRng::seed_from_u64(7777);
        for r in engine.query_batch(&workload(&data.graph), &mut rng) {
            let r = r.unwrap_or_else(|e| panic!("{site:?}: post-recovery error {e}"));
            if let Some(a) = r {
                assert!(a.degraded.is_none(), "{site:?}: stale degradation: {a:?}");
            }
        }
    }
}

/// Admission control: with `max_inflight = 1` and a slow in-flight batch,
/// concurrent batches are shed immediately with the retriable
/// `Overloaded` error, and a retry after the engine drains succeeds.
#[test]
fn overload_sheds_concurrent_batches_with_retriable_error() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    // Each evaluation sleeps 100ms, so the barrier-released racers below
    // overlap with certainty.
    failpoint::arm(Site::EvalWorker, Action::Delay(Duration::from_millis(100)));
    let data = dataset();
    let cfg = CodConfig {
        max_inflight: Some(1),
        ..base_cfg()
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let queries = vec![Query::codu(0), Query::codu(17)];
    const RACERS: usize = 4;
    let barrier = Barrier::new(RACERS);
    let outcomes: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RACERS)
            .map(|i| {
                let (engine, barrier, queries) = (&engine, &barrier, &queries);
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(9000 + i as u64);
                    barrier.wait();
                    let results = engine.query_batch(queries, &mut rng);
                    let shed = results
                        .iter()
                        .any(|r| matches!(r, Err(CodError::Overloaded { .. })));
                    if shed {
                        // Shedding is all-or-nothing per batch and retriable.
                        for r in &results {
                            match r {
                                Err(
                                    e @ CodError::Overloaded {
                                        max_inflight,
                                        retry_after,
                                    },
                                ) => {
                                    assert_eq!(*max_inflight, 1);
                                    assert!(e.is_retriable());
                                    assert!(
                                        *retry_after >= Duration::from_millis(25),
                                        "hint below the base: {retry_after:?}"
                                    );
                                }
                                other => panic!("mixed shed batch: {other:?}"),
                            }
                        }
                    }
                    shed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed_batches = outcomes.iter().filter(|&&s| s).count();
    assert!(shed_batches > 0, "no batch was shed at max_inflight = 1");
    assert!(
        shed_batches < RACERS,
        "every batch was shed; none was admitted"
    );
    assert_eq!(
        engine.metrics().queries_shed,
        (shed_batches * queries.len()) as u64
    );
    // The engine has drained: a retry is admitted and succeeds.
    failpoint::disarm_all();
    let mut rng = SmallRng::seed_from_u64(9999);
    for r in engine.query_batch(&queries, &mut rng) {
        assert!(r.is_ok(), "retry after shedding failed: {r:?}");
    }
}

/// Concurrency stress (satellite of the governance tentpole): many threads
/// mixing `query`, `query_batch`, and `clear_cache` under injected delays
/// that widen every race window. Must terminate without deadlock, panic,
/// or error, and leave the cache and metrics tallies consistent.
#[test]
fn concurrent_queries_and_cache_clears_stay_consistent() {
    let _g = guard();
    failpoint::disarm_all();
    if failpoint::compiled_in() {
        for site in SITES {
            failpoint::arm(site, Action::Delay(Duration::from_millis(1)));
        }
    }
    let data = dataset();
    let cfg = CodConfig {
        limits: generous_limits(),
        ..base_cfg()
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let queries = workload(&data.graph);
    const WORKERS: usize = 8;
    const ROUNDS: usize = 2;
    let issued: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let (engine, queries) = (&engine, &queries);
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(4000 + w as u64);
                    let mut issued = 0u64;
                    for round in 0..ROUNDS {
                        match (w + round) % 3 {
                            0 => {
                                for &q in queries {
                                    engine.query(q, &mut rng).unwrap();
                                    issued += 1;
                                }
                            }
                            1 => {
                                for r in engine.query_batch(queries, &mut rng) {
                                    r.unwrap();
                                    issued += 1;
                                }
                            }
                            _ => {
                                engine.clear_cache();
                                for r in engine.query_batch(queries, &mut rng) {
                                    r.unwrap();
                                    issued += 1;
                                }
                            }
                        }
                    }
                    issued
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    failpoint::disarm_all();
    let metrics = engine.metrics();
    assert_eq!(metrics.queries, issued, "metrics lost or double-counted");
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.queries_shed, 0, "nothing was shed: no cap set");
    assert_eq!(
        metrics.queries,
        metrics.answers_index + metrics.answers_compressed + metrics.answers_none + metrics.errors,
        "outcome tallies do not partition the query count"
    );
    let stats = engine.cache_stats();
    assert!(stats.misses > 0, "cache never built anything");
    assert!(
        stats.len <= stats.capacity,
        "cache overflowed its capacity: {stats:?}"
    );
    // The engine is still serviceable after the storm.
    let mut rng = SmallRng::seed_from_u64(31);
    assert!(engine.query(Query::codu(0), &mut rng).is_ok());
}

/// Permit-accounting regression (PR 6): a panic during the **plan pass**
/// (cache/index build, before any evaluation worker spawns) must release
/// the admission permit on unwind. The permit is RAII and minted before
/// planning, so `inflight()` must read 0 afterwards and the very next
/// call on a `max_inflight = 1` engine must be admitted — a leaked permit
/// would shed it forever.
#[test]
fn plan_pass_panic_releases_the_admission_permit() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    let data = dataset();
    let cfg = CodConfig {
        max_inflight: Some(1),
        ..base_cfg()
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let queries = workload(&data.graph);

    // CacheBuild fires inside the plan pass (recluster-cache and HIMOR
    // builds); EvalWorker fires inside the evaluation fan-out. Both paths
    // must release the permit whether the panic is swallowed into
    // `CodError::Internal` or unwinds out of the call.
    for site in [Site::CacheBuild, Site::EvalWorker] {
        failpoint::disarm_all();
        failpoint::arm(site, Action::Panic);
        let mut rng = SmallRng::seed_from_u64(606);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.query_batch(&queries, &mut rng)
        }));
        if let Ok(results) = &outcome {
            assert!(
                results.iter().any(|r| r.is_err()),
                "{site:?}: armed panic changed nothing"
            );
            assert!(
                !results
                    .iter()
                    .any(|r| matches!(r, Err(CodError::Overloaded { .. }))),
                "{site:?}: the panicking batch shed itself"
            );
        }
        failpoint::disarm_all();
        assert_eq!(
            engine.inflight(),
            0,
            "{site:?}: admission permit leaked across the panic"
        );
        // The real proof: the next batch is admitted and serves cleanly.
        let mut rng = SmallRng::seed_from_u64(607);
        for r in engine.query_batch(&queries, &mut rng) {
            assert!(
                r.is_ok(),
                "{site:?}: engine unserviceable after panic: {r:?}"
            );
        }
    }
    failpoint::disarm_all();
}

/// The shed-streak behind `Overloaded::retry_after` resets once a call is
/// admitted again: hints grow while pressure persists and fall back to the
/// base after recovery, so clients are never told to back off forever.
#[test]
fn retry_after_hint_grows_under_pressure_and_resets_on_admission() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    failpoint::arm(Site::EvalWorker, Action::Delay(Duration::from_millis(150)));
    let data = dataset();
    let cfg = CodConfig {
        max_inflight: Some(1),
        ..base_cfg()
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let queries = vec![Query::codu(0)];

    // Hold the only permit with a slow batch, then shed repeatedly.
    let hints: Vec<Duration> = std::thread::scope(|scope| {
        let holder = {
            let (engine, queries) = (&engine, &queries);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(71);
                engine.query_batch(queries, &mut rng)
            })
        };
        // Wait until the holder actually occupies the engine.
        while engine.inflight() == 0 {
            std::thread::yield_now();
        }
        let mut hints = Vec::new();
        for i in 0..4 {
            let mut rng = SmallRng::seed_from_u64(80 + i);
            match engine.query_batch(&queries, &mut rng).remove(0) {
                Err(CodError::Overloaded { retry_after, .. }) => hints.push(retry_after),
                other => panic!("expected a shed, got {other:?}"),
            }
        }
        holder.join().unwrap();
        hints
    });
    assert!(
        hints.windows(2).all(|w| w[0] <= w[1]),
        "hints shrank under sustained pressure: {hints:?}"
    );
    assert!(
        hints.last().unwrap() > &hints[0],
        "hints never grew: {hints:?}"
    );

    // Admission resets the streak: the next shed starts from the base.
    failpoint::disarm_all();
    let mut rng = SmallRng::seed_from_u64(90);
    for r in engine.query_batch(&queries, &mut rng) {
        assert!(r.is_ok());
    }
    assert_eq!(engine.retry_after_hint(), Duration::from_millis(25));
}
