//! Out-of-core artifact suite: CODX v3 persistence, memory-mapped
//! serving, lazy CRC verification, and version interop.
//!
//! The contract under test (see `cod_core::codx`): a CODX v3 file can be
//! memory-mapped and served **zero-copy** behind the same accessors the
//! in-RAM structs implement — answers from a mapped engine are
//! bit-identical to an engine over eagerly built artifacts; corruption is
//! caught by per-section CRCs on first access (never a panic, never a
//! wrong answer); and the versioned writer round-trips both v2 and v3
//! through the same `load_index` entry point.

use std::sync::{Arc, Mutex};

use pcod::cod::persist::{load_index, save_index_versioned};
use pcod::cod::recluster::build_hierarchy;
use pcod::cod::{save_artifacts, serialize_artifacts, MappedArtifacts, QueryLimits, CODX_V3};
use pcod::prelude::*;
use rand::prelude::*;

/// The failpoint registry is process-global and one test below arms a
/// panic on the section-access site every other test drives, so the whole
/// suite serializes through this lock (same idiom as `tests/governance.rs`).
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(150, 9)
}

fn cfg() -> CodConfig {
    CodConfig {
        k: 3,
        theta: 12,
        parallelism: Parallelism::Threads(2),
        ..CodConfig::default()
    }
}

/// Graph + prebuilt artifacts, the same way the engine builds them.
fn build_artifacts(g: &AttributedGraph) -> (Dendrogram, HimorIndex) {
    let engine = CodEngine::new(g.clone(), cfg());
    let mut rng = SmallRng::seed_from_u64(4242);
    let base = engine.base_hierarchy();
    let index = engine.ensure_himor(&mut rng);
    (base.dendro.clone(), (*index).clone())
}

fn workload(g: &AttributedGraph) -> Vec<Query> {
    let mut queries = Vec::new();
    for &q in &[0u32, 3, 17, 40, 77] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries
}

/// `(members, rank, uncertain)` projection of one answer — the equatable
/// core compared across engines.
type Projected = Option<(Vec<NodeId>, usize, bool)>;

fn comparable(results: Vec<CodResult<Option<CodAnswer>>>) -> Vec<Result<Projected, String>> {
    results
        .into_iter()
        .map(|r| {
            r.map(|opt| opt.map(|a| (a.members, a.rank, a.uncertain)))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Round-trip through a real file: every persisted structure survives
/// byte-exactly, mapped or eager.
#[test]
fn v3_file_round_trips_mapped_and_eager() {
    let _g = guard();
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let dir = std::env::temp_dir().join(format!("codx_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("arts.codx");
    save_artifacts(&path, g, &dendro, &index).expect("save");

    for (arts, label) in [
        (MappedArtifacts::open(&path).expect("open"), "mapped"),
        (MappedArtifacts::open_eager(&path).expect("eager"), "eager"),
    ] {
        assert_eq!(arts.num_nodes(), g.num_nodes(), "{label}: node count");
        let rg = arts.graph().expect("graph");
        assert_eq!(
            rg.csr().raw_offsets(),
            g.csr().raw_offsets(),
            "{label}: CSR offsets"
        );
        assert_eq!(
            rg.csr().raw_neighbors(),
            g.csr().raw_neighbors(),
            "{label}: CSR targets"
        );
        assert_eq!(
            rg.attrs().raw_values(),
            g.attrs().raw_values(),
            "{label}: attribute values"
        );
        let rh = arts.hierarchy().expect("hierarchy");
        assert_eq!(
            rh.dendro.merges(),
            dendro.merges(),
            "{label}: dendrogram merges"
        );
        let ri = arts.himor().expect("himor");
        assert_eq!(ri.num_nodes(), index.num_nodes(), "{label}: index nodes");
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(ri.ranks_of(v), index.ranks_of(v), "{label}: ranks of {v}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance gate: an engine over the memory mapping answers
/// bit-identically to an engine over eagerly built artifacts.
#[test]
fn mapped_engine_answers_match_eager_engine() {
    let _g = guard();
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let dir = std::env::temp_dir().join(format!("codx_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("arts.codx");
    save_artifacts(&path, g, &dendro, &index).expect("save");

    let queries = workload(g);
    let limits = QueryLimits::default();
    let seq = SeedSequence::new(0xC0DE);

    let lca = LcaIndex::new(&dendro);
    let eager = CodEngine::from_parts(
        Arc::new(g.clone()),
        cfg(),
        pcod::hierarchy::Hierarchy { dendro, lca },
        index,
    );
    let want = comparable(eager.query_batch_seeded(&queries, &seq, 0, &limits));
    assert!(want.iter().any(|r| matches!(r, Ok(Some(_)))));

    let arts = MappedArtifacts::open(&path).expect("open");
    assert!(arts.is_mapped(), "expected a live mapping on this platform");
    let mapped = CodEngine::from_mapped(&arts, cfg()).expect("engine");
    // The handle can drop — segments keep the mapping alive via Arc.
    drop(arts);
    let got = comparable(mapped.query_batch_seeded(&queries, &seq, 0, &limits));
    assert_eq!(got, want, "mapped answers diverged from eager answers");
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-section CRC is lazy: corruption inside one section passes `open`
/// (only the directory is validated), then surfaces as `IndexCorrupt` on
/// first access of that section — never a panic or a silently wrong read.
#[test]
fn corruption_is_caught_lazily_per_section() {
    let _g = guard();
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let bytes = serialize_artifacts(g, &dendro, &index).expect("serialize");

    // Flip one byte deep in the payload (well past header + directory).
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let arts = MappedArtifacts::from_vec(corrupt).expect("open parses header + directory");
    // At least one artifact accessor must report the corruption; none may
    // panic or return wrong data silently (the CRC gates every section).
    let results = [
        arts.graph().err().map(|e| e.to_string()),
        arts.hierarchy().err().map(|e| e.to_string()),
        arts.himor().err().map(|e| e.to_string()),
    ];
    assert!(
        results.iter().flatten().any(|e| e.contains("corrupt")),
        "corrupted section went undetected: {results:?}"
    );

    // Whole-file truncation is caught at open by the footer check.
    let truncated = bytes[..bytes.len() - 9].to_vec();
    assert!(MappedArtifacts::from_vec(truncated).is_err());
}

/// `save_index_versioned` writes both formats and `load_index` reads both
/// back — v3 via the eager-load fallback, with identical artifacts.
#[test]
fn versioned_writer_round_trips_v2_and_v3() {
    let _g = guard();
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let dir = std::env::temp_dir().join(format!("codx_ver_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let v2 = dir.join("idx.v2.codx");
    let v3 = dir.join("idx.v3.codx");
    save_index_versioned(&v2, g, &dendro, &index, 2).expect("save v2");
    save_index_versioned(&v3, g, &dendro, &index, CODX_V3).expect("save v3");
    assert!(
        save_index_versioned(&dir.join("bad"), g, &dendro, &index, 9).is_err(),
        "unknown version must be rejected"
    );

    let (d2, i2) = load_index(&v2).expect("load v2");
    let (d3, i3) = load_index(&v3).expect("load v3");
    assert_eq!(d2.merges(), dendro.merges());
    assert_eq!(d3.merges(), dendro.merges());
    for v in 0..g.num_nodes() as NodeId {
        assert_eq!(i2.ranks_of(v), index.ranks_of(v));
        assert_eq!(i3.ranks_of(v), index.ranks_of(v));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The hierarchy built from a v3 file equals the one `build_hierarchy`
/// produces from the same graph (the file stores the merges verbatim).
#[test]
fn persisted_hierarchy_matches_rebuilt_hierarchy() {
    let _g = guard();
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let bytes = serialize_artifacts(g, &dendro, &index).expect("serialize");
    let arts = MappedArtifacts::from_vec(bytes).expect("open");
    let fresh = build_hierarchy(g.csr(), Linkage::Average);
    assert_eq!(
        arts.hierarchy().expect("hierarchy").dendro.merges(),
        fresh.merges()
    );
}

/// Failpoint leg: `mmap_section` sits on the lazy CRC verification path.
/// A panic armed there is contained by the engine's plan isolation — the
/// batch still returns, queries on already-verified sections answer.
#[test]
fn mmap_section_failpoint_is_contained_by_the_engine() {
    let _g = guard();
    use pcod::cod::failpoint::{self, Action, Site};

    if !failpoint::compiled_in() {
        return; // release builds compile failpoints out
    }
    let data = dataset();
    let g = &data.graph;
    let (dendro, index) = build_artifacts(g);
    let bytes = serialize_artifacts(g, &dendro, &index).expect("serialize");

    // Arm *after* open so the header parse is clean, then panic on the
    // first section access.
    let arts = MappedArtifacts::from_vec(bytes).expect("open");
    failpoint::disarm_all();
    failpoint::arm(Site::MmapSection, Action::Panic);
    let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| arts.graph()));
    failpoint::disarm_all();
    assert!(
        contained.is_err(),
        "armed mmap_section failpoint did not fire"
    );
    // Disarmed, the same handle serves normally (lazy slots retry only if
    // the panic did not poison them — a fresh accessor must work).
    let rg = arts.graph().expect("graph after disarm");
    assert_eq!(rg.num_nodes(), g.num_nodes());
}
