//! Statistical-equivalence harness for the confidence-bound adaptive
//! evaluator over the shared RR pool (`compressed_cod_adaptive_pooled`).
//!
//! The adaptive loop doubles the per-node sample rate until the top-k
//! verdict at every level is certain *and* the influence estimate's
//! confidence half-width (empirical-Bernstein / Hoeffding, whichever is
//! tighter) falls below `ε`. These tests pin the statistical contract on a
//! 40-query Cora-scale grid:
//!
//! * **agreement** — adaptive answers match a fixed reference run at four
//!   times the starting rate on at least 95% of the grid,
//! * **honesty** — the reported half-width is exactly the documented bound
//!   evaluated at the answer, and a converged report never claims a
//!   half-width above its `ε`,
//! * **consistency** — at the common answer level, the adaptive and
//!   reference influence estimates differ by no more than the sum of
//!   their confidence intervals (with both estimates folding prefixes of
//!   the *same* pool, a violation would mean the bound is mis-derived).

use pcod::cod::compressed::{
    compressed_cod_adaptive_pooled, compressed_cod_pooled, influence_half_width,
};
use pcod::cod::pool::RrPoolEntry;
use pcod::cod::recluster::build_hierarchy;
use pcod::prelude::*;
use rand::prelude::*;
use std::sync::Arc;

/// Confidence parameters documented in DESIGN.md §13: half-width bound
/// `ε` on the normalized influence scale at confidence `1 − δ`.
const EPSILON: f64 = 0.05;
const DELTA: f64 = 0.05;
/// Reference rate: 4× the adaptive starting rate (`θ_ref = 4·θ₀`).
const THETA_START: usize = 2;
const THETA_REF: usize = 4 * THETA_START;

struct Grid {
    data: pcod::datasets::Dataset,
    dendro: Dendrogram,
    lca: LcaIndex,
    queries: Vec<NodeId>,
    pool: Arc<RrPoolEntry>,
}

/// The 40-query Cora grid, with one shared pool: Cora is connected, so
/// every query's chain tops out at the whole vertex set and all 40
/// queries share a single `(attr: none, universe: V)` pool key.
fn grid() -> Grid {
    let data = pcod::datasets::by_name("cora", 42).expect("cora generator exists");
    let dendro = build_hierarchy(data.graph.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(0xC0DA);
    let queries: Vec<NodeId> = pcod::datasets::gen_queries(&data.graph, 40, &mut rng)
        .into_iter()
        .map(|(q, _)| q)
        .collect();
    assert_eq!(queries.len(), 40, "grid must hold 40 queries");
    let universe: Arc<Vec<NodeId>> = Arc::new((0..data.graph.num_nodes() as NodeId).collect());
    let pool = Arc::new(RrPoolEntry::new(None, universe, false));
    Grid {
        data,
        dendro,
        lca,
        queries,
        pool,
    }
}

/// Adaptive vs fixed-θ reference across the whole grid. One test drives
/// all three contract clauses so the (shared, grown-once) pool is built a
/// single time.
#[test]
fn adaptive_agrees_with_fixed_reference_on_95_percent_of_the_grid() {
    let grid = grid();
    let g = grid.data.graph.csr();
    let n = g.num_nodes();
    let mut ws = QueryScratch::new();
    let mut agree = 0usize;
    let mut converged = 0usize;
    for &q in &grid.queries {
        let chain = DendroChain::new(&grid.dendro, &grid.lca, q).expect("chain exists");
        let universe_len = chain.universe().len();
        assert_eq!(universe_len, n, "cora is connected: the chain spans V");
        let (adaptive, report) = compressed_cod_adaptive_pooled(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            3,
            THETA_START,
            THETA_REF,
            EPSILON,
            DELTA,
            &grid.pool,
            Parallelism::Threads(2),
            Some(&mut ws),
            None,
        )
        .expect("valid query");
        let reference = compressed_cod_pooled(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            3,
            THETA_REF,
            None,
            &grid.pool,
            Parallelism::Threads(2),
            Some(&mut ws),
            None,
        )
        .expect("valid query");

        // Honesty: the report's half-width is the documented bound
        // evaluated at the answer's level, and convergence implies it met ε.
        assert!(report.rounds >= 1 && report.theta > 0);
        assert_eq!(report.epsilon, EPSILON);
        let h = adaptive.best_level.unwrap_or(0);
        let p_hat = adaptive.sigma_q[h] / universe_len as f64;
        let recomputed = influence_half_width(p_hat, adaptive.theta, DELTA);
        assert_eq!(
            report.half_width.to_bits(),
            recomputed.to_bits(),
            "q={q}: reported half-width is not the documented bound"
        );
        if report.converged {
            converged += 1;
            assert!(
                report.half_width <= report.epsilon,
                "q={q}: converged with half-width {} above ε {}",
                report.half_width,
                report.epsilon
            );
        } else {
            // Non-converged runs must have been stopped by the cap, which
            // is exactly the reference rate — so they folded the same
            // prefix as the reference and the answers are identical.
            assert_eq!(
                adaptive.theta, reference.theta,
                "q={q}: non-converged run stopped below the θ_max cap"
            );
        }

        // Agreement: same characteristic community as the 4×θ₀ reference.
        if adaptive.best_level == reference.best_level {
            agree += 1;
        }

        // Consistency: at the common level both estimates fold prefixes of
        // the same sample sequence, so they may differ by at most the sum
        // of their confidence half-widths.
        if let (Some(ha), Some(hr)) = (adaptive.best_level, reference.best_level) {
            if ha == hr {
                let pa = adaptive.sigma_q[ha] / universe_len as f64;
                let pr = reference.sigma_q[hr] / universe_len as f64;
                let bound = influence_half_width(pa, adaptive.theta, DELTA)
                    + influence_half_width(pr, reference.theta, DELTA);
                assert!(
                    (pa - pr).abs() <= bound,
                    "q={q}: |{pa} − {pr}| exceeds the combined CI {bound}"
                );
            }
        }
    }
    assert!(
        agree * 100 >= grid.queries.len() * 95,
        "adaptive agreed with the reference on only {agree}/{} queries",
        grid.queries.len()
    );
    // The grid must actually exercise the early-stopping path, not just
    // run every query to the cap.
    assert!(
        converged > 0,
        "no query converged before θ_max — ε is not exercising the bound"
    );
}

/// The adaptive escalation path is deterministic and thread-invariant:
/// rounds, final θ, half-width, and the outcome replay bit-identically
/// because every round folds a key-derived prefix of the shared pool.
#[test]
fn adaptive_pooled_replays_bit_identically_across_threads() {
    let data = pcod::datasets::amazon_like_scaled(200, 9);
    let g = data.graph.csr();
    let dendro = build_hierarchy(g, Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let universe: Arc<Vec<NodeId>> = Arc::new((0..g.num_nodes() as NodeId).collect());
    let q = 7u32;
    let chain = DendroChain::new(&dendro, &lca, q).expect("chain exists");
    let run = |t: usize| {
        // A private pool per run: growth itself must be thread-invariant.
        let pool = RrPoolEntry::new(None, universe.clone(), false);
        compressed_cod_adaptive_pooled(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            3,
            2,
            16,
            0.02,
            DELTA,
            &pool,
            Parallelism::Threads(t),
            None,
            None,
        )
        .expect("valid query")
    };
    let (ref_out, ref_report) = run(1);
    for t in [1usize, 2, 8] {
        let (out, report) = run(t);
        assert_eq!(out, ref_out, "threads {t}: adaptive outcome diverged");
        assert_eq!(report, ref_report, "threads {t}: adaptive report diverged");
    }
}

/// The bound itself: `influence_half_width` is the min of the
/// empirical-Bernstein and Hoeffding forms, shrinks with Θ, and collapses
/// toward the Bernstein form for small p̂.
#[test]
fn influence_half_width_shapes() {
    assert!(influence_half_width(0.5, 0, DELTA).is_infinite());
    let wide = influence_half_width(0.5, 100, DELTA);
    let tight = influence_half_width(0.5, 10_000, DELTA);
    assert!(tight < wide, "more samples must tighten the bound");
    let hoeffding = |theta: f64| ((2.0 / DELTA).ln() / (2.0 * theta)).sqrt();
    assert!(
        influence_half_width(0.5, 1000, DELTA) <= hoeffding(1000.0) + 1e-12,
        "the returned bound must never exceed Hoeffding"
    );
    // At p̂ near 0, Bernstein's variance term vanishes and the bound beats
    // Hoeffding by a wide margin.
    assert!(influence_half_width(0.001, 10_000, DELTA) < 0.5 * hoeffding(10_000.0));
}
