//! Exact influence oracle: brute-force possible-world enumeration on tiny
//! graphs, validating Theorems 1 and 2 end to end.
//!
//! Under the independent cascade model, every directed edge `u → v` is live
//! with probability `p(u, v)` independently; `σ_C(q)` is the expected
//! number of nodes in `C` reachable from `q` through live edges inside
//! `C`. For graphs with at most ~11 directed edge pairs we can enumerate
//! all `2^{2|E|}` worlds exactly and compare against both the RR-based
//! estimator and the forward Monte-Carlo simulator.

use pcod::influence::estimate::InfluenceEstimate;
use pcod::influence::montecarlo;
use pcod::prelude::*;
use rand::prelude::*;

/// Exact σ_C(q) by enumerating all live/blocked states of directed edges.
fn exact_influence(g: &Csr, model: Model, q: NodeId, members: &[NodeId]) -> f64 {
    // Directed edges (u -> v) with the forward probability p(u, v).
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (u, v) in g.edges() {
        edges.push((u, v, model.edge_prob(g, v)));
        edges.push((v, u, model.edge_prob(g, u)));
    }
    let m = edges.len();
    assert!(m <= 24, "exact enumeration needs a tiny graph");
    let keep = |v: NodeId| members.binary_search(&v).is_ok();
    assert!(keep(q));
    let mut total = 0.0f64;
    for world in 0u32..(1 << m) {
        let mut prob = 1.0f64;
        for (i, &(_, _, p)) in edges.iter().enumerate() {
            if world >> i & 1 == 1 {
                prob *= p;
            } else {
                prob *= 1.0 - p;
            }
            if prob == 0.0 {
                break;
            }
        }
        if prob == 0.0 {
            continue;
        }
        // BFS over live edges restricted to members.
        let mut active = vec![q];
        let mut seen = vec![false; g.num_nodes()];
        seen[q as usize] = true;
        let mut head = 0;
        while head < active.len() {
            let x = active[head];
            head += 1;
            for (i, &(a, b, _)) in edges.iter().enumerate() {
                if a == x && world >> i & 1 == 1 && !seen[b as usize] && keep(b) {
                    seen[b as usize] = true;
                    active.push(b);
                }
            }
        }
        total += prob * active.len() as f64;
    }
    total
}

/// Path 0-1-2 plus chord 0-2: 8 directed edges, enumerable.
fn tiny() -> Csr {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    b.add_edge(2, 3);
    b.build()
}

#[test]
fn monte_carlo_converges_to_exact_ic() {
    let g = tiny();
    let members: Vec<NodeId> = (0..4).collect();
    let mut rng = SmallRng::seed_from_u64(1);
    for model in [Model::WeightedCascade, Model::UniformIc(0.4)] {
        for q in 0..4u32 {
            let exact = exact_influence(&g, model, q, &members);
            let mc = montecarlo::influence(&g, model, q, 60_000, &mut rng, |_| true);
            assert!(
                (mc - exact).abs() < 0.03 * exact.max(1.0),
                "{model:?} q={q}: mc {mc} vs exact {exact}"
            );
        }
    }
}

#[test]
fn rr_estimator_converges_to_exact_ic() {
    let g = tiny();
    let members: Vec<NodeId> = (0..4).collect();
    let mut rng = SmallRng::seed_from_u64(2);
    for model in [Model::WeightedCascade, Model::UniformIc(0.35)] {
        let est = InfluenceEstimate::on_graph(&g, model, 120_000, &mut rng);
        for q in 0..4u32 {
            let exact = exact_influence(&g, model, q, &members);
            let got = est.sigma(q);
            assert!(
                (got - exact).abs() < 0.04 * exact.max(1.0),
                "{model:?} q={q}: rr {got} vs exact {exact}"
            );
        }
    }
}

#[test]
fn restricted_rr_estimator_matches_exact_community_influence() {
    // Theorem 2 exactly: σ_C with C = {0, 1, 2} (node 3 excluded).
    let g = tiny();
    let members: Vec<NodeId> = vec![0, 1, 2];
    let mut rng = SmallRng::seed_from_u64(3);
    let est =
        InfluenceEstimate::on_community(&g, Model::WeightedCascade, &members, 150_000, &mut rng);
    for &q in &members {
        let exact = exact_influence(&g, Model::WeightedCascade, q, &members);
        let got = est.sigma(q);
        assert!(
            (got - exact).abs() < 0.04 * exact.max(1.0),
            "q={q}: restricted rr {got} vs exact {exact}"
        );
    }
}

#[test]
fn exact_oracle_sanity() {
    // Hand-checkable case: two nodes, one edge, p = 1 both ways.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1);
    let g = b.build();
    let members = vec![0, 1];
    let exact = exact_influence(&g, Model::WeightedCascade, 0, &members);
    assert!((exact - 2.0).abs() < 1e-12);
    // Uniform IC p = 0.5: σ(0) = 1 + 0.5 = 1.5.
    let exact = exact_influence(&g, Model::UniformIc(0.5), 0, &members);
    assert!((exact - 1.5).abs() < 1e-12);
}
