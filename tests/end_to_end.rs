//! Cross-crate integration tests: full COD pipelines on generated datasets.

use pcod::cod::measures::{answer_quality, is_truly_top_k};
use pcod::prelude::*;
use rand::prelude::*;

fn small_dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(1200, 99)
}

fn cfg(k: usize) -> CodConfig {
    CodConfig {
        k,
        theta: 30,
        ..CodConfig::default()
    }
}

#[test]
fn all_methods_answer_a_workload() {
    let data = small_dataset();
    let g = &data.graph;
    let mut rng = SmallRng::seed_from_u64(1);
    let queries = pcod::datasets::gen_queries(g, 12, &mut rng);

    let c = cfg(5);
    let codu = Codu::new(g, c);
    let codr = Codr::new(g, c);
    let codl_minus = CodlMinus::new(g, c);
    let codl = Codl::new(g, c, &mut rng);

    let mut answered = [0usize; 4];
    for &(q, a) in &queries {
        let answers = [
            codu.query(q, &mut rng).unwrap(),
            codr.query(q, a, &mut rng).unwrap(),
            codl_minus.query(q, a, &mut rng).unwrap(),
            codl.query(q, a, &mut rng).unwrap(),
        ];
        for (i, ans) in answers.iter().enumerate() {
            if let Some(ans) = ans {
                answered[i] += 1;
                assert!(ans.members.binary_search(&q).is_ok(), "answer contains q");
                assert!(
                    ans.members.windows(2).all(|w| w[0] < w[1]),
                    "sorted, unique"
                );
                assert!(ans.rank <= c.k, "reported rank respects k");
                let quality = answer_quality(g, a, Some(ans));
                assert!(quality.size >= 2.0, "communities have at least two nodes");
                assert!((0.0..=1.0).contains(&quality.topology_density));
                assert!((0.0..=1.0).contains(&quality.attribute_density));
            }
        }
    }
    // At k = 5 most queries should be answerable by the hierarchy methods.
    for (i, name) in ["CODU", "CODR", "CODL-", "CODL"].iter().enumerate() {
        assert!(
            answered[i] >= queries.len() / 2,
            "{name} answered only {}/{} queries",
            answered[i],
            queries.len()
        );
    }
}

#[test]
fn answers_are_usually_truly_top_k() {
    // Top-k precision sanity: CODL's claimed communities should mostly
    // survive a high-θ ground-truth check (paper §V-C reports precision
    // near 1 for the compressed approach).
    let data = small_dataset();
    let g = &data.graph;
    let mut rng = SmallRng::seed_from_u64(2);
    let queries = pcod::datasets::gen_queries(g, 10, &mut rng);
    let c = cfg(5);
    let codl = Codl::new(g, c, &mut rng);
    let mut checked = 0;
    let mut correct = 0;
    for &(q, a) in &queries {
        if let Some(ans) = codl.query(q, a, &mut rng).unwrap() {
            if ans.members.len() > 400 {
                continue; // keep the ground-truth check cheap
            }
            checked += 1;
            if is_truly_top_k(g, c.model, &ans.members, q, c.k, 200, &mut rng) {
                correct += 1;
            }
        }
    }
    assert!(checked >= 3, "need some answers to check");
    assert!(
        correct * 3 >= checked * 2,
        "top-k precision too low: {correct}/{checked}"
    );
}

#[test]
fn community_size_grows_with_k() {
    let data = small_dataset();
    let g = &data.graph;
    let mut rng = SmallRng::seed_from_u64(3);
    let queries = pcod::datasets::gen_queries(g, 8, &mut rng);
    let mut avg_sizes = Vec::new();
    for k in [1usize, 3, 5] {
        let c = cfg(k);
        let codu = Codu::new(g, c);
        // Reseed per k so the three runs share their randomness as much as
        // possible; residual noise at the rank boundary is tolerated below.
        let mut krng = SmallRng::seed_from_u64(33);
        let mut total = 0f64;
        for &(q, _) in &queries {
            if let Some(ans) = codu.query(q, &mut krng).unwrap() {
                total += ans.size() as f64;
            }
        }
        avg_sizes.push(total / queries.len() as f64);
    }
    // Fig. 7(a)-(f): average size increases (weakly, modulo sampling noise)
    // with k.
    assert!(
        avg_sizes[0] <= avg_sizes[1] + 2.0 && avg_sizes[1] <= avg_sizes[2] * 1.25 + 2.0,
        "sizes should grow with k: {avg_sizes:?}"
    );
    assert!(
        avg_sizes[2] > avg_sizes[0],
        "k=5 must beat k=1 clearly: {avg_sizes:?}"
    );
    let _ = rng;
}

#[test]
fn codl_agrees_with_codl_minus_on_found_levels() {
    // CODL (index) and CODL⁻ (no index) share LORE's chain; when both
    // answer, the community CODL returns must be at least as large — the
    // index scans top-down for the largest qualifying ancestor while both
    // use the same estimates modulo sampling noise.
    let data = small_dataset();
    let g = &data.graph;
    let mut rng = SmallRng::seed_from_u64(4);
    let queries = pcod::datasets::gen_queries(g, 10, &mut rng);
    let c = cfg(5);
    let codl = Codl::new(g, c, &mut rng);
    let codl_minus = CodlMinus::new(g, c);
    let mut both = 0;
    let mut close = 0;
    for &(q, a) in &queries {
        let x = codl.query(q, a, &mut rng).unwrap();
        let y = codl_minus.query(q, a, &mut rng).unwrap();
        if let (Some(x), Some(y)) = (x, y) {
            both += 1;
            // Same chain; estimates are independent, so a borderline rank
            // can move the chosen level. Require that *most* answers land
            // within a small size factor rather than every single one.
            let (big, small) = if x.size() >= y.size() {
                (x.size() as f64, y.size() as f64)
            } else {
                (y.size() as f64, x.size() as f64)
            };
            if big / small < 20.0 {
                close += 1;
            }
        }
    }
    assert!(both >= 3, "need overlapping answers, got {both}");
    assert!(
        close * 2 >= both,
        "CODL and CODL- diverge too often: {close}/{both} close"
    );
}

#[test]
fn baselines_and_cod_find_reasonable_communities() {
    use cod_search::atc::AtcParams;
    let data = small_dataset();
    let g = &data.graph;
    let mut rng = SmallRng::seed_from_u64(5);
    let queries = pcod::datasets::gen_queries(g, 15, &mut rng);
    for &(q, a) in &queries {
        if let Some(c) = pcod::search::acq_query(g, q, a, 2) {
            assert!(c.binary_search(&q).is_ok());
            // Every member carries the attribute — ACQ's contract.
            assert!(c.iter().all(|&v| g.has_attr(v, a)));
        }
        if let Some(c) = pcod::search::cac_query(g, q, a) {
            assert!(c.binary_search(&q).is_ok());
            assert!(c.iter().all(|&v| g.has_attr(v, a)));
            assert!(c.len() >= 3, "a truss community spans a triangle");
        }
        if let Some(c) = pcod::search::atc_query(g, q, a, AtcParams::default()) {
            assert!(c.binary_search(&q).is_ok());
            assert!(c.len() >= 3);
        }
    }
}
