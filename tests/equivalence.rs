//! Estimator-equivalence tests: the theorems of §II–§III hold numerically.

use pcod::cod::chain::Chain;
use pcod::cod::compressed::compressed_cod;
use pcod::cod::independent::independent_cod;
use pcod::cod::recluster::build_hierarchy;
use pcod::prelude::*;
use rand::prelude::*;

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(600, 123)
}

/// Theorem 2: restricting RR-graph traversal to a community estimates the
/// same influence as forward Monte-Carlo simulation inside the community.
#[test]
fn theorem_2_induced_estimates_match_forward_simulation() {
    let data = dataset();
    let g = data.graph.csr();
    let mut rng = SmallRng::seed_from_u64(7);
    // Pick a mid-size planted community as C.
    let members = data
        .communities
        .iter()
        .find(|c| c.len() >= 12 && c.len() <= 60)
        .expect("a mid-size community exists")
        .clone();
    let est = pcod::influence::estimate::InfluenceEstimate::on_community(
        g,
        Model::WeightedCascade,
        &members,
        4000,
        &mut rng,
    );
    let mut mc_rng = SmallRng::seed_from_u64(8);
    for &v in members.iter().take(6) {
        let truth = pcod::influence::montecarlo::influence(
            g,
            Model::WeightedCascade,
            v,
            4000,
            &mut mc_rng,
            |u| members.binary_search(&u).is_ok(),
        );
        let got = est.sigma(v);
        assert!(
            (got - truth).abs() < 0.35 * truth.max(1.0),
            "node {v}: RR estimate {got} vs Monte-Carlo {truth}"
        );
    }
}

/// Compressed and Independent agree on per-level ranks (up to sampling
/// noise) and therefore on the found community, at high θ.
#[test]
fn compressed_matches_independent_at_high_theta() {
    let data = dataset();
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(9);
    let queries = pcod::datasets::gen_queries(g, 5, &mut rng);
    let k = 5;
    for &(q, _) in &queries {
        let chain = DendroChain::new(&dendro, &lca, q).unwrap();
        if chain.len() > 14 {
            continue; // keep Independent affordable
        }
        let a =
            compressed_cod(g.csr(), Model::WeightedCascade, &chain, q, k, 60, &mut rng).unwrap();
        let b = independent_cod(g.csr(), Model::WeightedCascade, &chain, q, k, 60, &mut rng);
        // Compare the top-k verdict per level; allow a one-level slack for
        // borderline ranks.
        let mut disagreements = 0;
        for h in 0..chain.len() {
            let x = a.ranks[h] <= k;
            let y = b.ranks[h] <= k;
            if x != y {
                disagreements += 1;
            }
        }
        assert!(
            disagreements * 4 <= chain.len(),
            "q={q}: {disagreements}/{} levels disagree (ranks {:?} vs {:?})",
            chain.len(),
            a.ranks,
            b.ranks
        );
    }
}

/// The compressed evaluator's per-level σ̂ of the query node is consistent
/// with a direct per-community estimate.
#[test]
fn compressed_sigma_is_calibrated() {
    let data = dataset();
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(10);
    let q = pcod::datasets::gen_queries(g, 1, &mut rng)[0].0;
    let chain = DendroChain::new(&dendro, &lca, q).unwrap();
    let out = compressed_cod(g.csr(), Model::WeightedCascade, &chain, q, 5, 80, &mut rng).unwrap();
    // Root-level sigma equals the global influence of q.
    let mut mc_rng = SmallRng::seed_from_u64(11);
    let truth = pcod::influence::montecarlo::influence(
        g.csr(),
        Model::WeightedCascade,
        q,
        6000,
        &mut mc_rng,
        |_| true,
    );
    let est = *out.sigma_q.last().unwrap();
    assert!(
        (est - truth).abs() < 0.35 * truth.max(1.0) + 0.5,
        "sigma {est} vs Monte-Carlo {truth}"
    );
}

/// The linear threshold model round-trips through RR estimation too
/// (the paper's §II-A claims model-generality of the framework).
#[test]
fn lt_model_estimates_match_simulation() {
    let mut b = GraphBuilder::new(6);
    for v in 1..6 {
        b.add_edge(0, v);
    }
    b.add_edge(1, 2);
    let g = b.build();
    let mut rng = SmallRng::seed_from_u64(12);
    let est = pcod::influence::estimate::InfluenceEstimate::on_graph(
        &g,
        Model::LinearThreshold,
        30_000,
        &mut rng,
    );
    let mut mc_rng = SmallRng::seed_from_u64(13);
    for v in 0..6u32 {
        let truth = pcod::influence::montecarlo::influence(
            &g,
            Model::LinearThreshold,
            v,
            20_000,
            &mut mc_rng,
            |_| true,
        );
        let got = est.sigma(v);
        assert!(
            (got - truth).abs() < 0.25 * truth.max(1.0),
            "node {v}: LT estimate {got} vs simulation {truth}"
        );
    }
}

/// HIMOR index answers equal index-free compressed evaluation over the
/// same (non-attributed) hierarchy for globally influential nodes.
#[test]
fn himor_is_consistent_with_direct_evaluation() {
    let data = dataset();
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(14);
    let index = HimorIndex::build(g.csr(), Model::WeightedCascade, &dendro, &lca, 60, &mut rng);
    let queries = pcod::datasets::gen_queries(g, 8, &mut rng);
    let k = 5;
    let mut agreements = 0;
    let mut total = 0;
    for &(q, _) in &queries {
        let chain = DendroChain::new(&dendro, &lca, q).unwrap();
        let direct =
            compressed_cod(g.csr(), Model::WeightedCascade, &chain, q, k, 60, &mut rng).unwrap();
        let from_index = index.largest_top_k(&dendro, q, None, k);
        let direct_vertex = direct.best_level.map(|h| dendro.root_path(q)[h]);
        total += 1;
        if from_index == direct_vertex {
            agreements += 1;
        } else if let (Some(a), Some(b)) = (from_index, direct_vertex) {
            // Allow near-misses from sampling noise: sizes within 4x.
            let (x, y) = (dendro.size(a) as f64, dendro.size(b) as f64);
            if x.max(y) / x.min(y) < 4.0 {
                agreements += 1;
            }
        }
    }
    assert!(
        agreements * 3 >= total * 2,
        "index vs direct agreement too low: {agreements}/{total}"
    );
}

// ---------------------------------------------------------------------------
// Thread-invariance at the query surface: under any seeded `Parallelism`,
// every method facade is a pure function of `(graph, seed, cfg)` — the
// thread count must never show through in an answer, including the
// `uncertain` flag on budgeted runs.
// ---------------------------------------------------------------------------

/// Runs each facade with `Parallelism::Threads(t)` and a fresh RNG seeded
/// identically, returning all answers for comparison across `t`.
fn answers_at_threads(
    data: &pcod::datasets::Dataset,
    cfg_base: CodConfig,
    t: usize,
) -> Vec<Option<CodAnswer>> {
    let g = &data.graph;
    let cfg = CodConfig {
        parallelism: Parallelism::Threads(t),
        ..cfg_base
    };
    let mut rng = SmallRng::seed_from_u64(0xEC0D);
    let mut answers = Vec::new();
    let codu = Codu::new(g, cfg);
    let codr = Codr::new(g, cfg);
    let cm = CodlMinus::new(g, cfg);
    let codl = Codl::new(g, cfg, &mut rng);
    for q in [0u32, 31, 77, 150] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        answers.push(codu.query(q, &mut rng).unwrap());
        answers.push(codr.query(q, attr, &mut rng).unwrap());
        answers.push(cm.query(q, attr, &mut rng).unwrap());
        answers.push(codl.query(q, attr, &mut rng).unwrap());
    }
    answers
}

/// CODU, CODR, CODL⁻ and CODL give byte-identical answers at 1, 2 and 8
/// threads when seeded parallelism is on.
#[test]
fn facades_are_thread_count_invariant() {
    let data = dataset();
    let cfg = CodConfig {
        k: 3,
        theta: 12,
        ..CodConfig::default()
    };
    let reference = answers_at_threads(&data, cfg, 1);
    for t in [2usize, 8] {
        let got = answers_at_threads(&data, cfg, t);
        assert_eq!(got, reference, "threads {t}: facade answers diverged");
    }
}

/// Budgeted evaluation — including whether the budget ran out and flagged
/// the answer `uncertain` — is thread-count-invariant too.
#[test]
fn budgeted_facades_are_thread_count_invariant() {
    let data = dataset();
    let cfg = CodConfig {
        k: 3,
        theta: 12,
        budget: Some(600), // small enough to trip on deep chains
        ..CodConfig::default()
    };
    let reference = answers_at_threads(&data, cfg, 1);
    assert!(
        reference.iter().flatten().any(|a| a.uncertain),
        "budget never tripped — test is not exercising the budgeted path"
    );
    for t in [2usize, 8] {
        let got = answers_at_threads(&data, cfg, t);
        assert_eq!(got, reference, "threads {t}: budgeted answers diverged");
    }
}

/// The adaptive escalation loop settles on the same θ and outcome for
/// every thread count (its doubling decisions only see thread-invariant
/// outcomes).
#[test]
fn adaptive_escalation_is_thread_count_invariant() {
    use pcod::cod::compressed::compressed_cod_adaptive_seeded;
    let data = dataset();
    let g = data.graph.csr();
    let dendro = build_hierarchy(g, Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    for q in [2u32, 48] {
        let chain = DendroChain::new(&dendro, &lca, q).unwrap();
        let reference = compressed_cod_adaptive_seeded(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            3,
            4,
            128,
            777,
            Parallelism::Threads(1),
        )
        .unwrap();
        for t in [2usize, 8] {
            let out = compressed_cod_adaptive_seeded(
                g,
                Model::WeightedCascade,
                &chain,
                q,
                3,
                4,
                128,
                777,
                Parallelism::Threads(t),
            )
            .unwrap();
            assert_eq!(out, reference, "q={q} threads {t}");
        }
    }
}
