//! Multi-shard engine suite: scatter-gather bit-identity, routing,
//! per-shard admission control, and invalidation forwarding.
//!
//! The contract under test (see `cod_core::shard`): a sharded batch over
//! shared artifacts answers **bit-identically** to the same batch on one
//! engine with the same master seed, for every shard count and thread
//! count — positional seed derivation makes the scatter split
//! unobservable. The suite drives a genuinely multi-component graph (two
//! disjoint copies of a generated dataset) so scatter actually fans out.

use std::sync::Arc;

use pcod::cod::shard::ShardedEngine;
use pcod::cod::QueryLimits;
use pcod::prelude::*;
use rand::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 3] = [1, 2, 8];

/// The matrix legs exercised under chaos (see [`chaos_armed`]): the full
/// 8-way spread stays in the plain leg and in `tests/seed_replay.rs`.
fn matrix() -> (&'static [usize], &'static [usize]) {
    if chaos_armed() {
        (&SHARDS[..2], &THREADS[..2])
    } else {
        (&SHARDS, &THREADS)
    }
}

/// Two disjoint copies of `g` in one graph: component structure the
/// partitioner can actually spread over shards.
fn doubled(g: &AttributedGraph) -> AttributedGraph {
    let n = g.num_nodes();
    let mut b = GraphBuilder::new(2 * n);
    for v in 0..n as NodeId {
        for &u in g.csr().neighbors(v) {
            if u > v {
                b.add_edge(v, u);
                b.add_edge(v + n as NodeId, u + n as NodeId);
            }
        }
    }
    let lists: Vec<Vec<AttrId>> = (0..2 * n)
        .map(|v| g.node_attrs((v % n) as NodeId).to_vec())
        .collect();
    AttributedGraph::from_parts(
        b.build(),
        pcod::graph::AttrTable::from_lists(lists),
        g.interner().clone(),
    )
}

/// `COD_FAILPOINTS=all` (the CI chaos leg) injects a 1ms delay at *every*
/// compiled-in site, so RR-sampling cost scales with Θ·|U|·delay. The
/// contracts here — bit-identity, routing, admission, invalidation — are
/// size-independent, so the chaos leg runs them on a smaller graph with a
/// smaller Θ to stay CI-feasible; plain `cargo test` keeps the full size
/// (same idiom as `tests/pool_reuse.rs`).
fn chaos_armed() -> bool {
    std::env::var_os("COD_FAILPOINTS").is_some()
}

fn dataset_graph() -> AttributedGraph {
    let n = if chaos_armed() { 60 } else { 150 };
    doubled(&pcod::datasets::amazon_like_scaled(n, 9).graph)
}

fn cfg(threads: usize) -> CodConfig {
    CodConfig {
        k: 3,
        theta: if chaos_armed() { 4 } else { 12 },
        parallelism: Parallelism::Threads(threads),
        ..CodConfig::default()
    }
}

/// Every method for a spread of nodes across both components, plus an
/// invalid query mixed in (errors must gather back in position too).
fn workload(g: &AttributedGraph) -> Vec<Query> {
    let n = g.num_nodes() as NodeId;
    let nodes: &[NodeId] = if chaos_armed() {
        &[0, n / 2, n - 1]
    } else {
        &[0, 3, 17, n / 2, n / 2 + 3, n / 2 + 17, n - 1]
    };
    let mut queries = Vec::new();
    for &q in nodes {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries.push(Query::codu(n + 5)); // out of range → InvalidQuery
    queries
}

/// `(members, rank, uncertain)` projection of one answer — the equatable
/// core compared across engines.
type Projected = Option<(Vec<NodeId>, usize, bool)>;

fn comparable(results: Vec<CodResult<Option<CodAnswer>>>) -> Vec<Result<Projected, String>> {
    results
        .into_iter()
        .map(|r| {
            r.map(|opt| opt.map(|a| (a.members, a.rank, a.uncertain)))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// An RNG whose every `next_u64` is the same fixed value: pins the single
/// master-seed draw a sharded batch makes.
struct FixedMaster(u64);
impl rand::RngCore for FixedMaster {
    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

/// Shared prebuilt artifacts, so every engine under comparison sees the
/// exact same hierarchy and index. Built once for the whole binary:
/// hierarchy + HIMOR construction is bit-identical at any thread count
/// (the seed-replay guarantee), so a single build serves every test —
/// which matters under the chaos leg, where each build pays the per-site
/// delay tax.
type Shared = (
    Arc<AttributedGraph>,
    Arc<pcod::hierarchy::Hierarchy>,
    Arc<HimorIndex>,
);

fn shared() -> &'static Shared {
    static SHARED: std::sync::OnceLock<Shared> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| {
        let g = Arc::new(dataset_graph());
        let builder = CodEngine::from_shared(Arc::clone(&g), cfg(1));
        let mut rng = SmallRng::seed_from_u64(4242);
        let base = builder.base_hierarchy();
        let index = builder.ensure_himor(&mut rng);
        (g, base, index)
    })
}

/// The acceptance gate: sharded scatter-gather over every (shards,
/// threads) combination is bit-identical to the single-engine seeded
/// batch with the same master seed.
#[test]
fn sharded_batch_is_bit_identical_to_single_engine() {
    let (g, base, index) = shared().clone();
    let queries = workload(&g);
    let limits = QueryLimits::default();
    let master = 0x05EE_DC0D;

    let single = CodEngine::from_shared_parts(
        Arc::clone(&g),
        cfg(1),
        Arc::clone(&base),
        Arc::clone(&index),
    );
    let reference =
        comparable(single.query_batch_seeded(&queries, &SeedSequence::new(master), 0, &limits));
    assert!(
        reference.iter().any(|r| matches!(r, Ok(Some(_)))),
        "workload must produce real answers"
    );
    assert!(
        reference.iter().any(|r| r.is_err()),
        "workload must produce the out-of-range error"
    );

    let (shard_legs, thread_legs) = matrix();
    for &shards in shard_legs {
        for &threads in thread_legs {
            let sharded = ShardedEngine::from_shared_parts(
                Arc::clone(&g),
                cfg(threads),
                Arc::clone(&base),
                Arc::clone(&index),
                shards,
            );
            let got = comparable(sharded.query_batch_with_limits(
                &queries,
                &limits,
                &mut FixedMaster(master),
            ));
            assert_eq!(
                got, reference,
                "sharded answers diverged at {shards} shards, {threads} threads"
            );
        }
    }
}

/// Repeated sharded runs replay identically (warm caches included).
#[test]
fn sharded_batch_replays_identically() {
    let (g, base, index) = shared().clone();
    let sharded = ShardedEngine::from_shared_parts(Arc::clone(&g), cfg(2), base, index, 2);
    let queries = workload(&g);
    let limits = QueryLimits::default();
    let first =
        comparable(sharded.query_batch_with_limits(&queries, &limits, &mut FixedMaster(99)));
    for run in 0..2 {
        let again =
            comparable(sharded.query_batch_with_limits(&queries, &limits, &mut FixedMaster(99)));
        assert_eq!(again, first, "sharded replay {run} diverged");
    }
}

/// Components never straddle shards: every query's answer members stay in
/// the query node's own shard.
#[test]
fn answers_stay_within_the_seed_nodes_shard() {
    let (g, base, index) = shared().clone();
    let sharded = ShardedEngine::from_shared_parts(Arc::clone(&g), cfg(1), base, index, 4);
    let queries = workload(&g);
    let results =
        sharded.query_batch_with_limits(&queries, &QueryLimits::default(), &mut FixedMaster(7));
    let mut checked = 0;
    for (q, r) in queries.iter().zip(results) {
        if let Ok(Some(a)) = r {
            let home = sharded.shard_of(q.node).expect("in range");
            for &m in &a.members {
                assert_eq!(
                    sharded.shard_of(m),
                    Some(home),
                    "member {m} of node {}'s community left shard {home}",
                    q.node
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 0, "no answers to check");
}

/// Per-shard admission: saturating one shard sheds only queries routed to
/// it; the other shard keeps answering. (A shard's `max_inflight` is
/// consumed by holding its engine's only permit with a concurrent batch.)
#[test]
fn admission_is_per_shard() {
    use std::sync::Barrier;

    let (g, base, index) = shared().clone();
    let sharded = Arc::new(ShardedEngine::from_shared_parts(
        Arc::clone(&g),
        CodConfig {
            max_inflight: Some(1),
            ..cfg(1)
        },
        base,
        index,
        2,
    ));
    let n = g.num_nodes() as NodeId;
    // One node per component → one per shard.
    let (a, b) = (0 as NodeId, n / 2);
    let (shard_a, shard_b) = (
        sharded.shard_of(a).expect("in range"),
        sharded.shard_of(b).expect("in range"),
    );
    assert_ne!(shard_a, shard_b, "components must land on distinct shards");

    // Occupy shard A's single permit from another thread, parked on a
    // barrier inside the engine via a long batch; then hit both shards.
    let barrier = Arc::new(Barrier::new(2));
    let holder = {
        let sharded = Arc::clone(&sharded);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            // A wide batch against shard A only: the permit is held for
            // its whole duration.
            let wide = if chaos_armed() { 40 } else { 200 };
            let queries: Vec<Query> = (0..wide)
                .map(|i| Query::codu((i % (n / 2)) as NodeId))
                .collect();
            barrier.wait();
            sharded.query_batch_with_limits(&queries, &QueryLimits::default(), &mut FixedMaster(1))
        })
    };
    barrier.wait();
    // Give the holder a moment to be admitted.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let probe = sharded.query_batch_with_limits(
        &[Query::codu(a), Query::codu(b)],
        &QueryLimits::default(),
        &mut FixedMaster(2),
    );
    // Shard B must answer regardless of shard A's saturation. Shard A may
    // or may not have shed depending on timing; the invariant is that a
    // B-side answer never turns into Overloaded because A is busy.
    assert!(
        !matches!(&probe[1], Err(CodError::Overloaded { .. })),
        "shard B shed because shard A was saturated: {:?}",
        probe[1]
    );
    let _ = holder.join().expect("holder thread");
}

/// Scoped invalidation forwards to every shard: after an attribute-scoped
/// footprint, each shard's pool epoch advanced and answers still replay.
#[test]
fn invalidation_forwards_to_all_shards() {
    use pcod::cod::Footprint;

    let (g, base, index) = shared().clone();
    let sharded = ShardedEngine::from_shared_parts(
        Arc::clone(&g),
        CodConfig {
            pool: true,
            ..cfg(1)
        },
        base,
        index,
        2,
    );
    let queries = workload(&g);
    let limits = QueryLimits::default();
    let before =
        comparable(sharded.query_batch_with_limits(&queries, &limits, &mut FixedMaster(5)));
    // Warm pools exist on both shards now; a topology footprint drops them.
    let mut footprint = Footprint::new();
    footprint.add_edge_event(0, 1);
    let (_, pools_dropped, _) = sharded.invalidate_scoped(&footprint);
    assert!(pools_dropped > 0, "warm pools should have been dropped");
    let after = comparable(sharded.query_batch_with_limits(&queries, &limits, &mut FixedMaster(5)));
    assert_eq!(after, before, "invalidation changed answers");
}

/// `clear_cache` reaches every shard's caches.
#[test]
fn clear_cache_reaches_every_shard() {
    let (g, base, index) = shared().clone();
    let sharded = ShardedEngine::from_shared_parts(
        Arc::clone(&g),
        CodConfig {
            pool: true,
            ..cfg(1)
        },
        base,
        index,
        2,
    );
    let queries = workload(&g);
    let _ = sharded.query_batch_with_limits(&queries, &QueryLimits::default(), &mut FixedMaster(3));
    let epochs_before: Vec<u64> = (0..sharded.num_shards())
        .map(|s| sharded.shard_engine(s).pool_epoch())
        .collect();
    sharded.clear_cache();
    for (s, &before) in epochs_before.iter().enumerate() {
        assert!(
            sharded.shard_engine(s).pool_epoch() > before,
            "shard {s} epoch did not advance"
        );
    }
}
