//! Crash-safety suite for the durability tier (DESIGN.md §16).
//!
//! The contract under test:
//!
//! * a crash injected at **every** durability failpoint site
//!   (`wal_append`, `wal_fsync`, `checkpoint_commit`, `manifest_swap`)
//!   leaves a directory that recovers to a state **bit-identical** to a
//!   clean replay of the recovered event prefix — at 1, 2 and 8 threads;
//! * a `kill -9` of a child `cod` process (mid-mutation and mid-serve)
//!   leaves a recoverable directory with the same bit-identity property;
//! * the CODM mutation-log format never panics and never silently
//!   misparses under truncation at every byte boundary or single-bit
//!   corruption;
//! * stale atomic-save temp files from dead processes are swept on open,
//!   while live processes' temp files are left alone;
//! * `cod mutate` reports the exact partial-apply position when a replay
//!   halts mid-log.
//!
//! Failpoint state is process-global, so the injection tests serialize
//! behind one lock and gate on `failpoint::compiled_in()`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pcod::cod::failpoint::{self, Action, DURABILITY_SITES};
use pcod::cod::mutation::MutationLog;
use pcod::cod::{serialize_artifacts, DurabilityConfig, DurableCod, DynamicCod};
use pcod::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("cod_dur_{tag}_{}_{seq}", std::process::id()));
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

/// A small two-community graph with three attributes — big enough that
/// mutations actually reshape the hierarchy, small enough for debug-mode
/// rebuilds per recovery.
fn graph() -> AttributedGraph {
    let n = 16usize;
    let mut b = GraphBuilder::new(n);
    for v in 0..8u32 {
        b.add_edge(v, (v + 1) % 8);
    }
    for v in 8..16u32 {
        b.add_edge(v, 8 + (v + 1) % 8);
    }
    b.add_edge(0, 8);
    b.add_edge(3, 12);
    let attrs = cod_attr_table(n);
    let mut interner = pcod::graph::AttrInterner::new();
    for name in ["A", "B", "C"] {
        interner.intern(name);
    }
    AttributedGraph::from_parts(b.build(), attrs, interner)
}

fn cod_attr_table(n: usize) -> pcod::graph::AttrTable {
    pcod::graph::AttrTable::from_lists((0..n).map(|v| vec![(v % 3) as AttrId]).collect())
}

fn cfg(threads: usize) -> CodConfig {
    CodConfig {
        k: 2,
        theta: 30,
        parallelism: Parallelism::Threads(threads),
        ..CodConfig::default()
    }
}

/// A deterministic mutation script touching both communities: edge
/// inserts, removals, and attribute edits.
fn events() -> Vec<pcod::cod::Mutation> {
    use pcod::cod::Mutation::*;
    vec![
        InsertEdge { u: 1, v: 5 },
        SetAttrs {
            node: 2,
            attrs: vec![1, 2],
        },
        InsertEdge { u: 9, v: 13 },
        RemoveEdge { u: 0, v: 8 },
        InsertEdge { u: 4, v: 11 },
        SetAttrs {
            node: 10,
            attrs: vec![0],
        },
        RemoveEdge { u: 3, v: 12 },
        InsertEdge { u: 6, v: 14 },
        SetAttrs {
            node: 15,
            attrs: vec![2, 0],
        },
        InsertEdge { u: 2, v: 13 },
    ]
}

const SEED: u64 = 0xD0_0D;

/// The canonical byte image of a clean, never-crashed replay of
/// `events()[..prefix]` on a fresh engine.
fn clean_replay_bytes(prefix: usize, threads: usize) -> Vec<u8> {
    let g = graph();
    let mut d = DynamicCod::with_seed(&g, cfg(threads), SEED);
    for m in &events()[..prefix] {
        d.apply(m).expect("clean apply");
    }
    let (g, dendro, index) = d.artifacts().expect("clean artifacts");
    serialize_artifacts(g, dendro, index).expect("clean serialize")
}

/// Crash (panic) injected at every durability failpoint site: the
/// directory left behind recovers, and the recovered artifacts are
/// bit-identical to a clean replay of the recovered prefix — at 1, 2 and
/// 8 threads.
#[test]
fn crash_at_every_durability_site_recovers_bit_identical() {
    if !failpoint::compiled_in() {
        return;
    }
    let _g = guard();
    failpoint::disarm_all();
    let evs = events();

    for site in DURABILITY_SITES {
        let dir = tmp_dir("site");
        let dcfg = DurabilityConfig {
            // Low thresholds so the checkpoint sites fire mid-script, and
            // fsync-per-record so the wal_fsync site fires on a schedule
            // the test controls rather than the group-commit clock.
            checkpoint_every_events: 4,
            fsync: pcod::cod::FsyncPolicy::Always,
            ..DurabilityConfig::default()
        };
        let mut d = DurableCod::create(&dir, &graph(), cfg(1), SEED, dcfg).expect("create");
        // A clean warm-up prefix, then arm the site and push the rest of
        // the script into the crash.
        for m in &evs[..2] {
            d.apply(m).expect("warm-up apply");
        }
        failpoint::arm(site, Action::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            for m in &evs[2..] {
                d.apply(m).map_err(|e| e.to_string()).expect("apply");
            }
            // Sites on the checkpoint path may survive the whole script
            // if no threshold tripped — force one.
            d.checkpoint().expect("checkpoint");
        }))
        .is_err();
        failpoint::disarm_all();
        drop(d); // the "crash": the process state is gone, the disk stays
        assert!(
            crashed,
            "{site:?} armed with Panic must crash the durable pipeline"
        );

        let mut images = Vec::new();
        let mut prefix = None;
        for threads in [1usize, 2, 8] {
            let (mut back, report) = DurableCod::open(&dir, cfg(threads), dcfg)
                .unwrap_or_else(|e| panic!("recovery after {site:?} crash failed: {e}"));
            let p = back.events_total() as usize;
            assert!(
                p >= 2,
                "{site:?}: the warm-up prefix was durable (got {p} events)"
            );
            assert_eq!(
                *prefix.get_or_insert(p),
                p,
                "{site:?}: recovery must replay the same prefix at every thread count"
            );
            assert_eq!(
                report.checkpoint_events + report.replayed,
                p as u64,
                "{site:?}: checkpoint + replay accounts for every event"
            );
            images.push(back.snapshot_bytes().expect("recovered snapshot"));
        }
        assert_eq!(
            images[0], images[1],
            "{site:?}: recovery at 1 and 2 threads diverged"
        );
        assert_eq!(
            images[0], images[2],
            "{site:?}: recovery at 1 and 8 threads diverged"
        );
        let prefix = prefix.unwrap_or(0);
        assert_eq!(
            images[0],
            clean_replay_bytes(prefix, 1),
            "{site:?}: recovered state != clean replay of {prefix} event(s)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Recovery replays through the same engine telemetry: the registry of a
/// recovered engine carries `cod_recovery_*` counters.
#[test]
fn recovery_metrics_flow_into_the_engine_registry() {
    let _g = guard();
    failpoint::disarm_all();
    let dir = tmp_dir("metrics");
    let mut d =
        DurableCod::create(&dir, &graph(), cfg(1), SEED, DurabilityConfig::default()).unwrap();
    for m in &events()[..4] {
        d.apply(m).unwrap();
    }
    d.flush_wal().unwrap();
    let appended = d.metrics_snapshot().wal_appended_records;
    assert_eq!(appended, 4, "every event leaves exactly one WAL record");
    assert!(d.metrics_snapshot().wal_fsyncs >= 1, "flush_wal fsyncs");
    drop(d);

    let (back, report) = DurableCod::open(&dir, cfg(1), DurabilityConfig::default()).unwrap();
    assert_eq!(report.replayed, 4);
    let snap = back.metrics_snapshot();
    assert_eq!(snap.recovery_replayed_records, 4);
    assert!(snap.recovery_nanos > 0, "recovery wall time was recorded");
    std::fs::remove_dir_all(&dir).ok();
}

/// `kill -9` of a child `cod mutate --wal` mid-replay: whatever prefix
/// made it to disk recovers bit-identically to a clean replay of that
/// prefix, at multiple thread counts.
#[test]
fn kill_nine_mid_mutation_recovers_bit_identical() {
    let _g = guard();
    failpoint::disarm_all();
    let work = tmp_dir("kill9");
    let dir = work.join("state");
    let edges = work.join("edges.txt");
    let attrs = work.join("attrs.txt");
    let log = work.join("log.txt");
    let g = graph();
    pcod::graph::io::write_edge_list(g.csr(), std::fs::File::create(&edges).unwrap()).unwrap();
    pcod::graph::io::write_attr_list(&g, std::fs::File::create(&attrs).unwrap()).unwrap();
    // Use the shared event script so the clean-replay oracle applies; the
    // graph reloaded from the files round-trips bit-identically (asserted
    // below before any crash is staged).
    let mut log_text = String::new();
    for m in events() {
        match m {
            pcod::cod::Mutation::InsertEdge { u, v } => {
                log_text.push_str(&format!("add {u} {v}\n"))
            }
            pcod::cod::Mutation::RemoveEdge { u, v } => {
                log_text.push_str(&format!("del {u} {v}\n"))
            }
            pcod::cod::Mutation::SetAttrs { node, attrs } => log_text.push_str(&format!(
                "attrs {node} {}\n",
                attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )),
        }
    }
    std::fs::write(&log, log_text).unwrap();
    let reloaded = pcod::graph::io::load_attributed(&edges, Some(&attrs)).unwrap();
    assert_eq!(
        serialize_graph_for_test(&reloaded),
        serialize_graph_for_test(&g),
        "file round-trip must reproduce the in-memory graph"
    );

    let mut child = std::process::Command::new(cod_bin())
        .args([
            "mutate",
            "--edges",
            edges.to_str().unwrap(),
            "--attrs",
            attrs.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--wal",
            dir.to_str().unwrap(),
            "--fsync",
            "always",
            "--seed",
            "53261", // 0xD00D
            "--theta",
            "30",
            "--k",
            "2",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cod mutate");
    // Wait for the durable directory to materialize, give the replay a
    // moment to make progress, then kill -9.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !dir.join("MANIFEST").exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        dir.join("MANIFEST").exists(),
        "child never created the durable directory"
    );
    std::thread::sleep(Duration::from_millis(150));
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let mut images = Vec::new();
    let mut prefix = None;
    for threads in [1usize, 2] {
        let (mut back, _report) = DurableCod::open(&dir, cfg(threads), DurabilityConfig::default())
            .expect("post-kill recovery");
        let p = back.events_total() as usize;
        assert_eq!(*prefix.get_or_insert(p), p);
        images.push(back.snapshot_bytes().unwrap());
    }
    assert_eq!(
        images[0], images[1],
        "thread-count divergence after kill -9"
    );
    let prefix = prefix.unwrap_or(0);
    assert_eq!(
        images[0],
        clean_replay_bytes(prefix, 1),
        "post-kill recovery != clean replay of the durable prefix ({prefix} events)"
    );
    std::fs::remove_dir_all(&work).ok();
}

/// `kill -9` of a child `cod serve --wal` after it finished recovering:
/// `/readyz` flips RECOVERING→ready during startup, the kill leaves the
/// WAL directory untouched, and it recovers bit-identically afterwards.
#[test]
fn kill_nine_of_recovered_serve_leaves_state_intact() {
    let _g = guard();
    failpoint::disarm_all();
    let dir = tmp_dir("serve9");
    let mut d =
        DurableCod::create(&dir, &graph(), cfg(1), SEED, DurabilityConfig::default()).unwrap();
    for m in &events()[..5] {
        d.apply(m).unwrap();
    }
    d.flush_wal().unwrap();
    let before = d.snapshot_bytes().unwrap();
    drop(d);

    let mut child = std::process::Command::new(cod_bin())
        .args([
            "serve",
            "--wal",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--theta",
            "30",
            "--k",
            "2",
            "--seed",
            "53261",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cod serve");
    // The recovering front prints its address immediately.
    let addr = {
        use std::io::BufRead as _;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("serve printed nothing")
            .expect("read serve stdout");
        line.rsplit("http://")
            .next()
            .expect("address in startup line")
            .trim()
            .to_string()
    };
    // Poll /readyz until recovery completes (200 ready); 503 RECOVERING
    // answers in between prove the probe surface is up throughout.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_ready = false;
    while Instant::now() < deadline {
        match http_get(&addr, "/readyz") {
            Ok((200, body)) => {
                assert_eq!(body, "ready\n");
                saw_ready = true;
                break;
            }
            Ok((503, body)) => {
                assert!(
                    body.contains("RECOVERING"),
                    "pre-ready 503 must say RECOVERING, got {body:?}"
                );
            }
            Ok((s, b)) => panic!("unexpected /readyz answer {s}: {b:?}"),
            Err(_) => {} // listener racing up
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_ready, "serve never became ready");
    // Recovered serving exposes the recovery counters.
    let (s, metrics) = http_get(&addr, "/metrics").expect("metrics");
    assert_eq!(s, 200);
    assert!(
        metrics.contains("cod_recovery_replayed_records_total 5"),
        "recovered serve must export its replay count"
    );
    let _ = child.kill();
    let _ = child.wait();

    let (mut back, report) =
        DurableCod::open(&dir, cfg(1), DurabilityConfig::default()).expect("post-kill open");
    assert_eq!(report.replayed, 5, "serving must not consume the WAL");
    assert_eq!(
        back.snapshot_bytes().unwrap(),
        before,
        "kill -9 of a read-only server must not perturb durable state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// CODM fuzz: truncation at every byte boundary and single-bit flips of a
/// serialized `MutationLog` either fail with a typed error or (for the
/// intact image) round-trip — never a panic, never silent misparse.
#[test]
fn codm_log_truncation_and_bit_flips_never_panic_or_misparse() {
    let mut log = MutationLog::new();
    for m in events() {
        log.push(m);
    }
    let bytes = log.to_bytes();
    let intact = MutationLog::from_bytes(&bytes).expect("intact image parses");
    assert_eq!(intact.events(), log.events());

    for keep in 0..bytes.len() {
        let err = MutationLog::from_bytes(&bytes[..keep]);
        assert!(
            err.is_err(),
            "truncation to {keep}/{} bytes must be rejected",
            bytes.len()
        );
    }
    for byte in 0..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut b = bytes.clone();
            b[byte] ^= 1 << bit;
            match MutationLog::from_bytes(&b) {
                Err(_) => {}
                Ok(parsed) => {
                    // The only acceptable parse of a corrupted image is a
                    // bit flip that the format genuinely cannot see —
                    // there is none: every payload byte is CRC'd and every
                    // header byte is validated.
                    panic!(
                        "flip of byte {byte} bit {bit} parsed as {} event(s)",
                        parsed.len()
                    );
                }
            }
        }
    }
}

/// Stale temp-sibling files from dead writers are swept; files of live
/// processes (and unparsable names) survive.
#[test]
fn stale_temp_files_are_swept_and_live_ones_kept() {
    if !std::path::Path::new("/proc").is_dir() {
        return; // the sweep is deliberately conservative without procfs
    }
    let dir = tmp_dir("sweep");
    // A provably dead pid: a child that has already exited and been reaped.
    let dead_pid = {
        let mut c = std::process::Command::new("true").spawn().expect("spawn");
        let pid = c.id();
        c.wait().expect("reap");
        pid
    };
    let me = std::process::id();
    let stale = dir.join(format!(".data.codx.tmp.{dead_pid}.0"));
    let live = dir.join(format!(".data.codx.tmp.{me}.1"));
    let odd = dir.join(".not-a-temp-file");
    std::fs::write(&stale, b"junk").unwrap();
    std::fs::write(&live, b"junk").unwrap();
    std::fs::write(&odd, b"junk").unwrap();

    let swept = pcod::cod::persist::sweep_temp_files(&dir).expect("sweep");
    assert_eq!(swept, 1, "exactly the dead writer's temp file goes");
    assert!(!stale.exists());
    assert!(live.exists(), "a live writer's temp file must survive");
    assert!(odd.exists(), "unrecognized names are not touched");
    std::fs::remove_dir_all(&dir).ok();
}

/// `cod mutate` halts with the exact partial-apply position when an event
/// in the log cannot be applied.
#[test]
fn mutate_reports_partial_apply_position() {
    let work = tmp_dir("partial");
    let edges = work.join("edges.txt");
    let attrs = work.join("attrs.txt");
    let log = work.join("log.txt");
    let g = graph();
    pcod::graph::io::write_edge_list(g.csr(), std::fs::File::create(&edges).unwrap()).unwrap();
    pcod::graph::io::write_attr_list(&g, std::fs::File::create(&attrs).unwrap()).unwrap();
    // Two good events, then an attribute edit on a node outside the graph.
    std::fs::write(&log, "add 1 5\nadd 9 13\nattrs 4096 0\n").unwrap();

    let out = std::process::Command::new(cod_bin())
        .args([
            "mutate",
            "--edges",
            edges.to_str().unwrap(),
            "--attrs",
            attrs.to_str().unwrap(),
            "--log",
            log.to_str().unwrap(),
            "--theta",
            "30",
            "--k",
            "2",
        ])
        .output()
        .expect("run cod mutate");
    assert!(!out.status.success(), "a bad event must fail the replay");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("replay halted at event 3"),
        "stderr must name the failing event, got: {stderr}"
    );
    assert!(
        stderr.contains("2 event(s) applied"),
        "stderr must report how many events landed, got: {stderr}"
    );
    std::fs::remove_dir_all(&work).ok();
}

// ---------------------------------------------------------------------
// helpers

fn cod_bin() -> PathBuf {
    // Integration tests live next to the binary under target/<profile>/.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("cod{}", std::env::consts::EXE_SUFFIX));
    p
}

fn http_get(addr: &str, target: &str) -> std::io::Result<(u16, String)> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(20)))?;
    stream.set_write_timeout(Some(Duration::from_secs(20)))?;
    stream.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    let (head, body) = out
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    Ok((status, body.to_owned()))
}

/// A cheap structural fingerprint of a graph for the file round-trip
/// sanity check (edge set + attribute lists).
fn serialize_graph_for_test(g: &AttributedGraph) -> (Vec<(NodeId, NodeId)>, Vec<Vec<AttrId>>) {
    let mut edges: Vec<_> = g.csr().edges().collect();
    edges.sort_unstable();
    let attrs = (0..g.num_nodes() as NodeId)
        .map(|v| g.node_attrs(v).to_vec())
        .collect();
    (edges, attrs)
}
