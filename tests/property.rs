//! Property-based tests (proptest) for the core invariants.

use cod_graph::FxHashMap;
use pcod::cod::compressed::incremental_top_k;
use pcod::cod::recluster::build_hierarchy;
use pcod::influence::RrPool;
use pcod::prelude::*;
use proptest::prelude::*;
use rand::prelude::*;

/// A random connected graph from a seed and size.
fn random_graph(n: usize, extra_edges: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Random spanning tree for connectivity.
    for v in 1..n as NodeId {
        let u = rng.random_range(0..v);
        b.add_edge(u, v);
    }
    for _ in 0..extra_edges {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dendrogram structural invariants on random connected graphs.
    #[test]
    fn dendrogram_invariants(n in 2usize..40, extra in 0usize..60, seed in 0u64..1000) {
        let g = random_graph(n, extra, seed);
        let d = build_hierarchy(&g, Linkage::Average);
        prop_assert_eq!(d.num_leaves(), n);
        prop_assert_eq!(d.num_vertices(), 2 * n - 1);
        prop_assert_eq!(d.size(d.root()), n);
        // Children partition their parent.
        for v in n as u32..d.num_vertices() as u32 {
            let [a, b] = d.children(v);
            prop_assert_eq!(d.size(a) + d.size(b), d.size(v));
            prop_assert_eq!(d.depth(a), d.depth(v) + 1);
            let ma = d.members_sorted(a);
            let mb = d.members_sorted(b);
            let mut union: Vec<_> = ma.iter().chain(mb.iter()).copied().collect();
            union.sort_unstable();
            prop_assert_eq!(union, d.members_sorted(v));
        }
        // contains() agrees with membership lists.
        for v in 0..d.num_vertices() as u32 {
            let members = d.members_sorted(v);
            for u in 0..n as NodeId {
                prop_assert_eq!(d.contains(v, u), members.binary_search(&u).is_ok());
            }
        }
    }

    /// LCA index agrees with parent-pointer chasing.
    #[test]
    fn lca_matches_naive(n in 2usize..30, extra in 0usize..40, seed in 0u64..1000) {
        let g = random_graph(n, extra, seed);
        let d = build_hierarchy(&g, Linkage::Average);
        let lca = LcaIndex::new(&d);
        let naive = |a: u32, b: u32| -> u32 {
            let mut anc = vec![a];
            let mut v = a;
            while d.parent(v) != pcod::hierarchy::NO_VERTEX {
                v = d.parent(v);
                anc.push(v);
            }
            let mut v = b;
            loop {
                if anc.contains(&v) {
                    return v;
                }
                v = d.parent(v);
            }
        };
        let nv = d.num_vertices() as u32;
        for a in (0..nv).step_by(3) {
            for b in (0..nv).step_by(4) {
                prop_assert_eq!(lca.lca(a, b), naive(a, b));
            }
        }
    }

    /// Every RR-graph node is reachable from the source, and induced
    /// restriction only keeps members.
    #[test]
    fn rr_graph_reachability(n in 2usize..30, extra in 0usize..50, seed in 0u64..1000) {
        let g = random_graph(n, extra, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let mut sampler = RrSampler::new(&g, Model::WeightedCascade);
        for _ in 0..10 {
            let rr = sampler.sample_uniform(&mut rng);
            let mut all = rr.reachable_within(|_| true);
            all.sort_unstable();
            let mut nodes = rr.nodes().to_vec();
            nodes.sort_unstable();
            prop_assert_eq!(all, nodes);
            // Restriction to even nodes only yields even nodes (or nothing).
            let within = rr.reachable_within(|v| v % 2 == 0);
            prop_assert!(within.iter().all(|&v| v % 2 == 0));
            if rr.source().is_multiple_of(2) {
                prop_assert!(within.contains(&rr.source()));
            } else {
                prop_assert!(within.is_empty());
            }
        }
    }

    /// The incremental top-k scan (Theorem 3's pool rule) is *exactly*
    /// equivalent to brute-force re-ranking of accumulated counts.
    #[test]
    fn incremental_top_k_is_exact(
        levels in 1usize..8,
        k in 1usize..6,
        seed in 0u64..5000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let universe: u32 = 30;
        // Random nested buckets: level h can contain any node id; counts
        // small so ties are frequent (stressing the tie-inclusive pool).
        let mut buckets: Vec<FxHashMap<NodeId, u32>> = Vec::new();
        for _ in 0..levels {
            let mut m = FxHashMap::default();
            for v in 0..universe {
                if rng.random_bool(0.4) {
                    m.insert(v, rng.random_range(1..5u32));
                }
            }
            buckets.push(m);
        }
        let q: NodeId = rng.random_range(0..universe);
        let out = incremental_top_k(&buckets, q, k, 100, universe as usize);

        // Brute force: accumulate counts level by level; q is top-k iff
        // fewer than k nodes have a strictly larger count.
        let mut acc: Vec<u32> = vec![0; universe as usize];
        let mut best = None;
        for (h, b) in buckets.iter().enumerate() {
            for (&v, &c) in b {
                acc[v as usize] += c;
            }
            let tq = acc[q as usize];
            let higher = acc.iter().filter(|&&c| c > tq).count();
            let is_top = higher < k;
            prop_assert_eq!(
                out.ranks[h] <= k,
                is_top,
                "level {}: incremental rank {} vs brute higher {}",
                h, out.ranks[h], higher
            );
            if is_top {
                best = Some(h);
            }
        }
        prop_assert_eq!(out.best_level, best);
    }

    /// k-core members all have >= k neighbors inside the community.
    #[test]
    fn kcore_degree_invariant(n in 4usize..40, extra in 5usize..80, seed in 0u64..1000, k in 1u32..5) {
        let g = random_graph(n, extra, seed);
        if let Some(c) = cod_search::kcore::kcore_component(&g, 0, k, |_| true) {
            prop_assert!(c.binary_search(&0).is_ok());
            for &v in &c {
                let internal = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| c.binary_search(&u).is_ok())
                    .count();
                prop_assert!(internal >= k as usize, "node {} has {} < {}", v, internal, k);
            }
        }
    }

    /// Triangle-connected truss community invariants: every community edge
    /// has trussness >= k, shares a triangle with the community, and the
    /// query node is an endpoint of at least one community edge.
    #[test]
    fn truss_community_invariants(n in 4usize..25, extra in 10usize..60, seed in 0u64..1000) {
        let g = random_graph(n, extra, seed);
        let t = cod_search::truss::TrussDecomposition::new(&g);
        let q = 0;
        if let Some(kq) = t.max_trussness_at(&g, q) {
            if kq >= 3 {
                let edges = t.triangle_connected_edges(&g, q, kq).unwrap();
                prop_assert!(!edges.is_empty());
                prop_assert!(
                    edges.iter().any(|&(u, v)| u == q || v == q),
                    "q touches the community"
                );
                let edge_set: std::collections::BTreeSet<(NodeId, NodeId)> =
                    edges.iter().copied().collect();
                for &(u, v) in &edges {
                    prop_assert!(t.edge_trussness(u, v).unwrap() >= kq);
                    // Some triangle through (u, v) lies fully inside the
                    // community (triangle connectivity).
                    let has_tri = g.neighbors(u).iter().any(|&w| {
                        g.has_edge(v, w)
                            && edge_set.contains(&(u.min(w), u.max(w)))
                            && edge_set.contains(&(v.min(w), v.max(w)))
                    });
                    prop_assert!(has_tri, "edge ({u},{v}) has no in-community triangle");
                }
                // Node list agrees with the edge endpoints.
                let c = t.triangle_connected_community(&g, q, kq).unwrap();
                let mut endpoints: Vec<NodeId> =
                    edges.iter().flat_map(|&(u, v)| [u, v]).collect();
                endpoints.sort_unstable();
                endpoints.dedup();
                prop_assert_eq!(c, endpoints);
            }
        }
    }

    /// `SeedSequence::seed_for` is injective over any index window: the
    /// derivation composes two bijections, so distinct sample indices can
    /// never collide regardless of the master seed.
    #[test]
    fn seed_derivation_is_injective(master in 0u64..u64::MAX, start in 0u64..1_000_000, span in 1usize..512) {
        let seq = SeedSequence::new(master);
        let seeds: Vec<u64> = (start..start + span as u64).map(|i| seq.seed_for(i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len(), "seed collision within index window");
    }

    /// Child streams never collide with each other or with the parent's
    /// per-index seeds (the adaptive sampler relies on round `r` drawing a
    /// fresh, disjoint stream).
    #[test]
    fn child_streams_are_distinct(master in 0u64..u64::MAX, a in 0u64..1000, b in 0u64..1000) {
        let seq = SeedSequence::new(master);
        if a != b {
            prop_assert_ne!(seq.child(a).master(), seq.child(b).master());
        }
        prop_assert_ne!(seq.child(a).master(), seq.master());
    }

    /// Replaying the same `(master, index)` pair reproduces the RR graph
    /// bit for bit: same source, same node order, same adjacency.
    #[test]
    fn same_master_and_index_replays_same_rr_graph(
        n in 2usize..30,
        extra in 0usize..50,
        gseed in 0u64..1000,
        master in 0u64..u64::MAX,
        index in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, gseed);
        let seq = SeedSequence::new(master);
        let mut s1 = RrSampler::new(&g, Model::WeightedCascade);
        let mut s2 = RrSampler::new(&g, Model::WeightedCascade);
        let rr1 = s1.sample_uniform(&mut seq.rng_for(index));
        let rr2 = s2.sample_uniform(&mut seq.rng_for(index));
        prop_assert_eq!(rr1.source(), rr2.source());
        prop_assert_eq!(rr1.nodes(), rr2.nodes());
        for l in 0..rr1.len() as u32 {
            prop_assert_eq!(rr1.out_neighbors(l), rr2.out_neighbors(l));
        }
    }

    /// Under deterministic worlds (`UniformIc(1.0)`, every coin live) the
    /// restricted sample equals reachability-within-the-restriction on the
    /// unrestricted sample — Theorem 2's possible-world coupling, checkable
    /// exactly because no randomness is left.
    #[test]
    fn deterministic_restricted_sample_is_reachability_restriction(
        n in 2usize..30,
        extra in 0usize..50,
        gseed in 0u64..1000,
        master in 0u64..u64::MAX,
    ) {
        let g = random_graph(n, extra, gseed);
        let seq = SeedSequence::new(master);
        let keep = |v: NodeId| v.is_multiple_of(2);
        let source: NodeId = 0; // even, so keep(source) holds
        let mut s1 = RrSampler::new(&g, Model::UniformIc(1.0));
        let mut s2 = RrSampler::new(&g, Model::UniformIc(1.0));
        let restricted = s1.sample_restricted(source, &mut seq.rng_for(0), keep);
        let full = s2.sample_from(source, &mut seq.rng_for(0));
        let mut got = restricted.nodes().to_vec();
        got.sort_unstable();
        let mut want = full.reachable_within(keep);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The shared RR pool is invariant under *any* thread count, not just
    /// the fixed 1/2/8 grid of the seed-replay suite.
    #[test]
    fn rr_pool_is_invariant_under_any_thread_count(
        n in 2usize..30,
        extra in 0usize..40,
        gseed in 0u64..500,
        master in 0u64..u64::MAX,
        threads in 2usize..12,
    ) {
        let g = random_graph(n, extra, gseed);
        let seq = SeedSequence::new(master);
        let theta = 64;
        let serial = RrPool::sample_seeded(
            &g, Model::WeightedCascade, theta, seq, None, Parallelism::Threads(1),
        );
        let parallel = RrPool::sample_seeded(
            &g, Model::WeightedCascade, theta, seq, None, Parallelism::Threads(threads),
        );
        for i in 0..theta {
            prop_assert_eq!(serial.set(i), parallel.set(i), "set {} diverged", i);
        }
    }

    /// `partition_components` is a cover that never splits a component:
    /// on arbitrary (often disconnected) graphs, every node lands in
    /// exactly one shard, shard ids stay dense, sizes add up, and no edge
    /// — hence no connected component — straddles a shard boundary. This
    /// is the invariant the multi-shard engine's routing correctness
    /// rests on.
    #[test]
    fn partition_is_a_cover_and_component_closed(
        n in 1usize..60,
        edges in 0usize..80,
        seed in 0u64..1000,
        shards in 1usize..9,
    ) {
        use pcod::graph::components::connected_components;
        use pcod::graph::partition::partition_components;
        // No spanning tree: disconnected graphs are the interesting case.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for _ in 0..edges {
            let u = rng.random_range(0..n as NodeId);
            let v = rng.random_range(0..n as NodeId);
            b.add_edge(u, v);
        }
        let g = b.build();
        let p = partition_components(&g, shards);
        prop_assert_eq!(p.num_nodes(), n);
        prop_assert_eq!(p.num_shards(), shards);
        // Cover: every node has exactly one in-range shard, and the
        // per-shard node lists tile the node set without overlap.
        let mut seen = vec![0usize; n];
        for s in 0..shards as u32 {
            for v in p.nodes_of_shard(s) {
                prop_assert_eq!(p.shard_of(v), s);
                prop_assert_eq!(p.shard_of_checked(v), Some(s));
                seen[v as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "a node is missing or doubled");
        prop_assert_eq!(p.shard_sizes().iter().sum::<usize>(), n);
        prop_assert_eq!(p.shard_sizes().len(), shards);
        prop_assert!(p.shard_of_checked(n as NodeId).is_none());
        // Component-closed: same component ⇒ same shard.
        let (_, comp) = connected_components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(p.shard_of(u), p.shard_of(v), "edge ({}, {}) split", u, v);
        }
        let mut shard_of_comp: Vec<Option<u32>> = vec![None; n];
        for v in 0..n as NodeId {
            let c = comp[v as usize] as usize;
            match shard_of_comp[c] {
                None => shard_of_comp[c] = Some(p.shard_of(v)),
                Some(s) => prop_assert_eq!(p.shard_of(v), s, "component {} split", c),
            }
        }
    }

    /// Graph measures stay in bounds on arbitrary member subsets.
    #[test]
    fn measures_are_bounded(n in 3usize..30, extra in 0usize..50, seed in 0u64..1000) {
        let g = random_graph(n, extra, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let members: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.random_bool(0.5)).collect();
        let rho = pcod::graph::measures::topology_density(&g, &members);
        prop_assert!((0.0..=1.0).contains(&rho));
        let cond = pcod::graph::measures::conductance(&g, &members);
        prop_assert!(cond >= 0.0);
    }
}

/// Partition degenerate inputs: the empty graph and a single isolated
/// node survive every shard count without panicking, and the cover
/// invariant holds vacuously / trivially.
#[test]
fn partition_handles_empty_and_singleton_graphs() {
    use pcod::graph::partition::{partition_components, Partition};
    for shards in [1usize, 2, 8] {
        let empty = partition_components(&GraphBuilder::new(0).build(), shards);
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_shards(), shards);
        assert_eq!(empty.shard_sizes().iter().sum::<usize>(), 0);
        assert!(empty.shard_of_checked(0).is_none());

        let singleton = partition_components(&GraphBuilder::new(1).build(), shards);
        assert_eq!(singleton.num_nodes(), 1);
        assert_eq!(singleton.shard_of(0), 0);
        assert_eq!(singleton.nodes_of_shard(0), vec![0]);
        assert_eq!(singleton.shard_sizes().iter().sum::<usize>(), 1);
    }
    // `num_shards = 0` clamps to 1 rather than dividing by zero.
    let clamped = partition_components(&GraphBuilder::new(3).build(), 0);
    assert_eq!(clamped.num_shards(), 1);
    assert_eq!(clamped.num_nodes(), 3);
    let trivial = Partition::single(3);
    assert_eq!(trivial.assignment(), &[0, 0, 0]);
}
