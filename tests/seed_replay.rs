//! Seed-replay equivalence suite: the determinism contract of the parallel
//! execution layer.
//!
//! Every seeded entry point must be a **pure function of its inputs and the
//! master seed** — bit-identical across thread counts (1, 2, 8), across
//! repeated runs, and under the `Auto` policy (whatever thread count the
//! environment resolves to). These tests are the enforcement layer for that
//! contract; if any of them fails, the per-index seed derivation has leaked
//! scheduling or chunking into a result.

use pcod::cod::compressed::{compressed_cod_adaptive_seeded, compressed_cod_seeded, CodOutcome};
use pcod::cod::recluster::build_hierarchy;
use pcod::influence::estimate::InfluenceEstimate;
use pcod::influence::montecarlo;
use pcod::influence::RrPool;
use pcod::prelude::*;
use rand::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(300, 9)
}

fn hierarchy(g: &AttributedGraph) -> (Dendrogram, LcaIndex) {
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    (dendro, lca)
}

/// The shared RR pool is bit-identical across thread counts and runs:
/// every set, in order, node for node.
#[test]
fn rr_pool_is_bit_identical_across_threads_and_runs() {
    let data = dataset();
    let g = data.graph.csr();
    let seeds = SeedSequence::new(0xC0D_5EED);
    let theta = 2000;
    let reference = RrPool::sample_seeded(
        g,
        Model::WeightedCascade,
        theta,
        seeds,
        None,
        Parallelism::Threads(1),
    );
    for t in THREADS {
        for run in 0..2 {
            let pool = RrPool::sample_seeded(
                g,
                Model::WeightedCascade,
                theta,
                seeds,
                None,
                Parallelism::Threads(t),
            );
            assert_eq!(pool.len(), reference.len());
            for i in 0..theta {
                assert_eq!(
                    pool.set(i),
                    reference.set(i),
                    "threads {t} run {run}: RR set {i} diverged"
                );
            }
        }
    }
}

/// Community-restricted pools replay identically too.
#[test]
fn restricted_rr_pool_is_bit_identical_across_threads() {
    let data = dataset();
    let g = data.graph.csr();
    let members = data
        .communities
        .iter()
        .find(|c| c.len() >= 10)
        .expect("a community exists")
        .clone();
    let seeds = SeedSequence::new(77);
    let theta = 1000;
    let reference = RrPool::sample_seeded(
        g,
        Model::WeightedCascade,
        theta,
        seeds,
        Some(&members),
        Parallelism::Threads(1),
    );
    for t in THREADS {
        let pool = RrPool::sample_seeded(
            g,
            Model::WeightedCascade,
            theta,
            seeds,
            Some(&members),
            Parallelism::Threads(t),
        );
        for i in 0..theta {
            assert_eq!(pool.set(i), reference.set(i), "threads {t}: set {i}");
        }
    }
}

/// `compressed_cod_seeded` returns byte-identical outcomes — ranks, sigma
/// estimates, uncertainty flags, best level — at 1, 2, and 8 threads and
/// across repeated runs.
#[test]
fn compressed_cod_outcome_is_bit_identical_across_threads_and_runs() {
    let data = dataset();
    let g = data.graph.csr();
    let (dendro, lca) = hierarchy(&data.graph);
    for q in [0u32, 17, 101] {
        let chain = DendroChain::new(&dendro, &lca, q).unwrap();
        let mut outcomes: Vec<CodOutcome> = Vec::new();
        for t in THREADS {
            for _run in 0..2 {
                let out = compressed_cod_seeded(
                    g,
                    Model::WeightedCascade,
                    &chain,
                    q,
                    3,
                    20,
                    4242,
                    Parallelism::Threads(t),
                )
                .unwrap();
                outcomes.push(out);
            }
        }
        for out in &outcomes[1..] {
            assert_eq!(out, &outcomes[0], "q={q}: outcome diverged");
        }
    }
}

/// The adaptive sampler's escalation path is part of the contract: the
/// doubling decisions depend only on outcomes, which are thread-invariant,
/// so the final θ and outcome must agree everywhere.
#[test]
fn adaptive_outcome_is_bit_identical_across_threads() {
    let data = dataset();
    let g = data.graph.csr();
    let (dendro, lca) = hierarchy(&data.graph);
    let q = 5u32;
    let chain = DendroChain::new(&dendro, &lca, q).unwrap();
    let reference = compressed_cod_adaptive_seeded(
        g,
        Model::WeightedCascade,
        &chain,
        q,
        2,
        4,
        256,
        99,
        Parallelism::Threads(1),
    )
    .unwrap();
    for t in THREADS {
        let out = compressed_cod_adaptive_seeded(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            2,
            4,
            256,
            99,
            Parallelism::Threads(t),
        )
        .unwrap();
        assert_eq!(out, reference, "threads {t}");
        assert_eq!(out.theta, reference.theta, "escalation path diverged");
    }
}

/// HIMOR build: every node's full rank vector matches across thread counts
/// and repeated runs.
#[test]
fn himor_build_is_bit_identical_across_threads_and_runs() {
    let data = dataset();
    let g = data.graph.csr();
    let (dendro, lca) = hierarchy(&data.graph);
    let reference = HimorIndex::build_seeded(
        g,
        Model::WeightedCascade,
        &dendro,
        &lca,
        8,
        31337,
        Parallelism::Threads(1),
    );
    for t in THREADS {
        for run in 0..2 {
            let idx = HimorIndex::build_seeded(
                g,
                Model::WeightedCascade,
                &dendro,
                &lca,
                8,
                31337,
                Parallelism::Threads(t),
            );
            assert_eq!(idx.theta(), reference.theta());
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(
                    idx.ranks_of(v),
                    reference.ranks_of(v),
                    "threads {t} run {run}: node {v} ranks diverged"
                );
            }
        }
    }
}

/// The Monte-Carlo estimator sums integer activation counts, so even its
/// `f64` average must be exactly equal across thread counts.
#[test]
fn montecarlo_estimate_is_bit_identical_across_threads() {
    let data = dataset();
    let g = data.graph.csr();
    let seeds = SeedSequence::new(2024);
    let reference = montecarlo::influence_seeded(
        g,
        Model::WeightedCascade,
        0,
        5000,
        seeds,
        Parallelism::Threads(1),
        |_| true,
    );
    for t in THREADS {
        let got = montecarlo::influence_seeded(
            g,
            Model::WeightedCascade,
            0,
            5000,
            seeds,
            Parallelism::Threads(t),
            |_| true,
        );
        assert_eq!(got.to_bits(), reference.to_bits(), "threads {t}");
    }
}

/// Whole-graph influence estimates carry identical per-node counts for
/// every thread count.
#[test]
fn influence_estimate_is_bit_identical_across_threads() {
    let data = dataset();
    let g = data.graph.csr();
    let seeds = SeedSequence::new(606);
    let reference = InfluenceEstimate::on_graph_seeded(
        g,
        Model::WeightedCascade,
        3000,
        seeds,
        Parallelism::Threads(1),
    );
    for t in THREADS {
        let est = InfluenceEstimate::on_graph_seeded(
            g,
            Model::WeightedCascade,
            3000,
            seeds,
            Parallelism::Threads(t),
        );
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(est.count(v), reference.count(v), "threads {t} node {v}");
        }
    }
}

/// `Auto` resolves to *some* thread count — and because results are
/// thread-count-invariant, it must agree with `Threads(1)` exactly,
/// whatever the environment picked.
#[test]
fn auto_policy_matches_explicit_thread_counts() {
    let data = dataset();
    let g = data.graph.csr();
    let (dendro, lca) = hierarchy(&data.graph);
    let q = 3u32;
    let chain = DendroChain::new(&dendro, &lca, q).unwrap();
    let serial_count = compressed_cod_seeded(
        g,
        Model::WeightedCascade,
        &chain,
        q,
        3,
        15,
        5,
        Parallelism::Threads(1),
    )
    .unwrap();
    let auto = compressed_cod_seeded(
        g,
        Model::WeightedCascade,
        &chain,
        q,
        3,
        15,
        5,
        Parallelism::Auto,
    )
    .unwrap();
    assert_eq!(auto, serial_count);
}

/// Regression for latent nondeterminism on the *legacy* serial path
/// (satellite of the determinism audit): running every facade twice with
/// the same seed must produce identical answers — any divergence means a
/// hash-iteration order leaked into results.
#[test]
fn full_pipeline_twice_with_same_seed_gives_identical_answers() {
    let data = dataset();
    let g = &data.graph;
    let cfg = CodConfig {
        k: 3,
        theta: 15,
        ..CodConfig::default()
    };
    let queries: Vec<NodeId> = vec![0, 9, 42, 133];
    let run = || {
        let mut answers: Vec<Option<CodAnswer>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1000);
        let codu = Codu::new(g, cfg);
        let codr = Codr::new(g, cfg);
        let cm = CodlMinus::new(g, cfg);
        let codl = Codl::new(g, cfg, &mut rng);
        for &q in &queries {
            let attr = g.node_attrs(q).first().copied().unwrap_or(0);
            answers.push(codu.query(q, &mut rng).unwrap());
            answers.push(codr.query(q, attr, &mut rng).unwrap());
            answers.push(cm.query(q, attr, &mut rng).unwrap());
            answers.push(codl.query(q, attr, &mut rng).unwrap());
        }
        answers
    };
    assert_eq!(run(), run(), "legacy serial pipeline is not replayable");
}

/// The same regression for the seeded parallel pipeline: two full runs of
/// every facade under `Threads(8)` replay exactly.
#[test]
fn parallel_pipeline_twice_with_same_seed_gives_identical_answers() {
    let data = dataset();
    let g = &data.graph;
    let cfg = CodConfig {
        k: 3,
        theta: 15,
        parallelism: Parallelism::Threads(8),
        ..CodConfig::default()
    };
    let queries: Vec<NodeId> = vec![0, 9, 42];
    let run = || {
        let mut answers: Vec<Option<CodAnswer>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(2000);
        let codu = Codu::new(g, cfg);
        let codl = Codl::new(g, cfg, &mut rng);
        for &q in &queries {
            let attr = g.node_attrs(q).first().copied().unwrap_or(0);
            answers.push(codu.query(q, &mut rng).unwrap());
            answers.push(codl.query(q, attr, &mut rng).unwrap());
        }
        answers
    };
    assert_eq!(run(), run(), "seeded parallel pipeline is not replayable");
}

// ---------------------------------------------------------------------------
// CodEngine equivalence: the serving layer must be a drop-in replacement.
// ---------------------------------------------------------------------------

/// Strips the unequatable error type so whole result sequences can be
/// compared with `assert_eq!`.
fn comparable(
    results: Vec<CodResult<Option<CodAnswer>>>,
) -> Vec<Result<Option<CodAnswer>, String>> {
    results
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect()
}

/// One engine serving all four methods answers bit-identically to the four
/// standalone facades, cold cache and warm, for every thread count — even
/// though the engine shares one artifact cache across methods (CODL⁻ warms
/// the local recluster CODL later reuses) while each facade run rebuilds
/// everything.
#[test]
fn engine_answers_match_facade_answers_across_threads() {
    let data = dataset();
    let g = &data.graph;
    let queries: Vec<NodeId> = vec![0, 9, 42, 133];
    for t in THREADS {
        let cfg = CodConfig {
            k: 3,
            theta: 15,
            parallelism: Parallelism::Threads(t),
            ..CodConfig::default()
        };
        let facade_answers = {
            let mut answers: Vec<Option<CodAnswer>> = Vec::new();
            let mut rng = SmallRng::seed_from_u64(1000);
            let codu = Codu::new(g, cfg);
            let codr = Codr::new(g, cfg);
            let cm = CodlMinus::new(g, cfg);
            let codl = Codl::new(g, cfg, &mut rng);
            for &q in &queries {
                let attr = g.node_attrs(q).first().copied().unwrap_or(0);
                answers.push(codu.query(q, &mut rng).unwrap());
                answers.push(codr.query(q, attr, &mut rng).unwrap());
                answers.push(cm.query(q, attr, &mut rng).unwrap());
                answers.push(codl.query(q, attr, &mut rng).unwrap());
            }
            answers
        };
        let engine = CodEngine::new(g.clone(), cfg);
        // Build the index with the facade stream's first draw (where
        // `Codl::new` consumed it); each pass below skips that draw to stay
        // aligned.
        engine.ensure_himor(&mut SmallRng::seed_from_u64(1000));
        let pass = |engine: &CodEngine| {
            let mut rng = SmallRng::seed_from_u64(1000);
            let _ = rng.next_u64(); // the index-build draw, consumed at setup
            let mut answers = Vec::new();
            for &q in &queries {
                let attr = g.node_attrs(q).first().copied().unwrap_or(0);
                answers.push(engine.query(Query::codu(q), &mut rng).unwrap());
                for m in [Method::Codr, Method::CodlMinus, Method::Codl] {
                    answers.push(engine.query(Query::new(q, attr, m), &mut rng).unwrap());
                }
            }
            answers
        };
        let cold = pass(&engine);
        let warm = pass(&engine);
        assert_eq!(
            cold, facade_answers,
            "threads {t}: cold engine diverged from facades"
        );
        assert_eq!(
            warm, facade_answers,
            "threads {t}: warm engine diverged from facades"
        );
        assert!(
            engine.cache_stats().hits > 0,
            "threads {t}: warm pass never hit the cache"
        );
    }
}

/// Query limits that never fire are invisible: an engine with generous
/// deadline/edge/memory caps armed (so every checkpoint actually polls a
/// token) answers bit-identically to the unlimited engine, for every
/// thread count, cold cache and warm. This is the governance layer's
/// no-trigger determinism contract.
#[test]
fn generous_limits_replay_bit_identically_across_threads() {
    let data = dataset();
    let g = &data.graph;
    let mut queries: Vec<Query> = Vec::new();
    for &q in &[0u32, 9, 42, 133] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    // Cold and warm passes are compared *pairwise* between the limited and
    // unlimited engines at the same cache state (a cold CODL query draws an
    // index-build seed mid-stream, so cold and warm streams differ by
    // design — that offset must be identical on both sides).
    type Passes = (
        Vec<Result<Option<CodAnswer>, String>>,
        Vec<Result<Option<CodAnswer>, String>>,
    );
    let run = |t: usize, limits: QueryLimits| -> Passes {
        let cfg = CodConfig {
            k: 3,
            theta: 15,
            parallelism: Parallelism::Threads(t),
            limits,
            ..CodConfig::default()
        };
        let engine = CodEngine::new(g.clone(), cfg);
        let mut rng = SmallRng::seed_from_u64(5000);
        let cold = comparable(engine.query_batch(&queries, &mut rng));
        let mut rng = SmallRng::seed_from_u64(5000);
        let warm = comparable(engine.query_batch(&queries, &mut rng));
        (cold, warm)
    };
    let generous = QueryLimits {
        deadline: Some(std::time::Duration::from_secs(3600)),
        max_rr_edges: Some(u64::MAX / 2),
        max_memory_bytes: Some(usize::MAX / 2),
    };
    let (ref_cold, ref_warm) = run(1, QueryLimits::default());
    assert!(ref_cold.iter().any(|r| matches!(r, Ok(Some(_)))));
    for t in THREADS {
        let (cold, warm) = run(t, generous);
        assert_eq!(
            cold, ref_cold,
            "threads {t}: generous limits changed cold answers"
        );
        assert_eq!(
            warm, ref_warm,
            "threads {t}: generous limits changed warm answers"
        );
    }
}

/// Batched answers are bit-identical to one-at-a-time answers with the same
/// seed, cold cache and warm, for every thread count — including the
/// positions of per-query errors.
#[test]
fn batched_answers_match_sequential_answers() {
    let data = dataset();
    let g = &data.graph;
    let mut queries: Vec<Query> = Vec::new();
    for &q in &[0u32, 9, 42, 133] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries.push(Query::codu(9999)); // out of range: errors in place
                                     // Prebuild the index with one fixed setup stream everywhere, so no run
                                     // consumes a mid-stream index-build draw and all query streams align.
    let make_engine = |t: usize| {
        let cfg = CodConfig {
            k: 3,
            theta: 15,
            parallelism: Parallelism::Threads(t),
            ..CodConfig::default()
        };
        let engine = CodEngine::new(g.clone(), cfg);
        engine.ensure_himor(&mut SmallRng::seed_from_u64(4000));
        engine
    };
    let reference = {
        let engine = make_engine(1);
        let mut rng = SmallRng::seed_from_u64(3000);
        comparable(
            queries
                .iter()
                .map(|&query| engine.query(query, &mut rng))
                .collect(),
        )
    };
    assert!(reference.iter().any(|r| r.is_err()), "error case missing");
    assert!(reference.iter().any(|r| matches!(r, Ok(Some(_)))));
    for t in THREADS {
        let engine = make_engine(t);
        let mut rng = SmallRng::seed_from_u64(3000);
        let cold = comparable(engine.query_batch(&queries, &mut rng));
        assert_eq!(cold, reference, "threads {t}: cold batch diverged");
        let mut rng = SmallRng::seed_from_u64(3000);
        let warm = comparable(engine.query_batch(&queries, &mut rng));
        assert_eq!(warm, reference, "threads {t}: warm batch diverged");
        let stats = engine.cache_stats();
        assert!(
            stats.hits > 0,
            "threads {t}: warm batch never hit the cache"
        );
    }
}

/// The pool-cache-warm path joins the thread matrix: with the shared
/// RR-pool cache enabled, cold batches (pools built in-line) and warm
/// batches (every pool served from cache) are bit-identical to each other
/// and across 1, 2, and 8 threads — pool growth uses the same per-index
/// seed derivation as everything else, and the warm fold replays the
/// identical sample prefix.
#[test]
fn pooled_engine_batches_replay_across_threads_cold_and_warm() {
    let data = dataset();
    let g = &data.graph;
    let mut queries: Vec<Query> = Vec::new();
    for &q in &[0u32, 9, 42, 133] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    let make_engine = |t: usize| {
        let cfg = CodConfig {
            k: 3,
            theta: 15,
            pool: true,
            parallelism: Parallelism::Threads(t),
            ..CodConfig::default()
        };
        let engine = CodEngine::new(g.clone(), cfg);
        engine.ensure_himor(&mut SmallRng::seed_from_u64(4000));
        engine
    };
    let reference = {
        let engine = make_engine(1);
        let mut rng = SmallRng::seed_from_u64(3000);
        comparable(engine.query_batch(&queries, &mut rng))
    };
    assert!(reference.iter().any(|r| matches!(r, Ok(Some(_)))));
    for t in THREADS {
        let engine = make_engine(t);
        let mut rng = SmallRng::seed_from_u64(3000);
        let cold = comparable(engine.query_batch(&queries, &mut rng));
        assert_eq!(cold, reference, "threads {t}: cold pooled batch diverged");
        assert!(engine.pool_stats().pools > 0, "threads {t}: no pool built");
        let mut rng = SmallRng::seed_from_u64(3000);
        let warm = comparable(engine.query_batch(&queries, &mut rng));
        assert_eq!(warm, reference, "threads {t}: warm pooled batch diverged");
        assert!(
            engine.metrics().counters.get(pcod::cod::Counter::PoolHits) > 0,
            "threads {t}: warm batch never hit the pool cache"
        );
    }
}

/// Shard routing joins the thread matrix: a [`ShardedEngine`] scattering
/// the batch over component shards and gathering the results answers
/// bit-identically to one unsharded engine over the same shared artifacts
/// and master seed — for every (shards, threads) combination, including
/// the in-place position of a routed error.
#[test]
fn sharded_engine_matches_unsharded_seeded_batch_across_threads() {
    use pcod::cod::shard::ShardedEngine;
    use std::sync::Arc;

    let data = dataset();
    let g = Arc::new(data.graph);
    let cfg = |t: usize| CodConfig {
        k: 3,
        theta: 15,
        parallelism: Parallelism::Threads(t),
        ..CodConfig::default()
    };
    // Shared prebuilt artifacts, so every engine under comparison sees the
    // exact same hierarchy and index.
    let builder = CodEngine::from_shared(Arc::clone(&g), cfg(1));
    let base = builder.base_hierarchy();
    let index = builder.ensure_himor(&mut SmallRng::seed_from_u64(4242));

    let mut queries: Vec<Query> = Vec::new();
    for &q in &[0u32, 9, 42, 133] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries.push(Query::codu(99_999)); // out of range: errors stay in place

    let limits = QueryLimits::default();
    let master = 0xAB5_EEDu64;
    let single = CodEngine::from_shared_parts(
        Arc::clone(&g),
        cfg(1),
        Arc::clone(&base),
        Arc::clone(&index),
    );
    let reference =
        comparable(single.query_batch_seeded(&queries, &SeedSequence::new(master), 0, &limits));
    assert!(reference.iter().any(|r| matches!(r, Ok(Some(_)))));
    assert!(reference.iter().any(|r| r.is_err()));

    /// Pins the single master-seed draw a sharded batch makes.
    struct Fixed(u64);
    impl rand::RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    for t in THREADS {
        for shards in [1usize, 2, 8] {
            let sharded = ShardedEngine::from_shared_parts(
                Arc::clone(&g),
                cfg(t),
                Arc::clone(&base),
                Arc::clone(&index),
                shards,
            );
            let got =
                comparable(sharded.query_batch_with_limits(&queries, &limits, &mut Fixed(master)));
            assert_eq!(
                got, reference,
                "shards {shards} threads {t}: routed batch diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// DynamicCod: the mutation pipeline joins the thread matrix.
// ---------------------------------------------------------------------------

/// Randomized mutate+query interleavings replay bit-identically at 1, 2
/// and 8 threads: instances built with the same pinned HIMOR seed and fed
/// the same event stream — edge inserts/removals, attribute re-keys,
/// interleaved queries, and a mid-stream explicit rebuild — answer every
/// query identically no matter how many repair cycles each thread count
/// went through. The per-flush RNGs differ on purpose: seeded flushes
/// must not consume them.
#[test]
fn dynamic_mutation_interleavings_replay_across_threads() {
    use pcod::cod::dynamic::DynamicCod;
    let data = dataset();
    let g = &data.graph;
    let run = |t: usize| {
        let cfg = CodConfig {
            k: 3,
            theta: 15,
            parallelism: Parallelism::Threads(t),
            ..CodConfig::default()
        };
        let mut d = DynamicCod::with_seed(g, cfg, 0xD15C);
        d.set_rebuild_threshold(10.0); // exercise the repair path
        let mut script = SmallRng::seed_from_u64(31);
        let n = g.num_nodes() as NodeId;
        let mut answers: Vec<Option<(Vec<NodeId>, usize)>> = Vec::new();
        for step in 0..30u64 {
            match script.random_range(0..4u32) {
                0 => {
                    let u = script.random_range(0..n);
                    let v = script.random_range(0..n);
                    if u != v {
                        d.insert_edge(u, v);
                    }
                }
                1 => {
                    let u = script.random_range(0..n);
                    for &v in g.csr().neighbors(u) {
                        if d.remove_edge(u, v) {
                            break;
                        }
                    }
                }
                2 => {
                    let v = script.random_range(0..n);
                    let a = script.random_range(0..g.interner().len() as AttrId);
                    d.set_attrs(v, vec![a]).unwrap();
                }
                _ => {}
            }
            if step == 15 {
                // An explicit rebuild mid-stream must not desynchronize
                // anything either (same pinned seed).
                d.rebuild(&mut SmallRng::seed_from_u64(900 + step + t as u64));
            }
            let q = script.random_range(0..n);
            let attr = g.node_attrs(q).first().copied().unwrap_or(0);
            let ans = d
                .query(q, attr, &mut SmallRng::seed_from_u64(5000 + step))
                .unwrap();
            answers.push(ans.map(|a| (a.members, a.rank)));
        }
        answers
    };
    let reference = run(1);
    assert!(reference.iter().any(|a| a.is_some()), "no query answered");
    for t in THREADS {
        assert_eq!(run(t), reference, "threads {t}: interleaving diverged");
    }
}
