//! Cross-query RR-pool cache suite: the determinism, reuse, and
//! invalidation contracts of `cod_core::pool`.
//!
//! The contract under test:
//! * a pool grown in several top-ups is **bit-identical** to a pool
//!   sampled fresh at the final size, at every thread count (the pool's
//!   sample `i` is a pure function of the cache key and `i`),
//! * answers served from a warm (cached) pool equal answers served from a
//!   cold pool, for all four methods — reuse is invisible in results,
//! * every `DynamicCod` mutation and `CodEngine::clear_cache` bumps the
//!   pool epoch and drops every pool, so a stale pool is never consulted,
//! * the two pool failpoint sites (`pool_grow`, `pool_fold`) degrade and
//!   recover like every other governed site.
//!
//! Failpoint state is process-global, so every test in this binary
//! serializes behind one lock (armed injections must never leak into a
//! concurrently running pool test).

use pcod::cod::failpoint::{self, Action, Site};
use pcod::cod::pool::RrPoolEntry;
use pcod::cod::DynamicCod;
use pcod::prelude::*;
use proptest::prelude::*;
use rand::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const THREADS: [usize; 3] = [1, 2, 8];

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `COD_FAILPOINTS=all` (the CI chaos leg) injects a 1ms delay at *every*
/// compiled-in site, and `hfs_level` fires once per chain level per RR
/// graph — cost scales with Θ·|U|. The contracts here are size-independent,
/// so the chaos leg runs them on a smaller graph with a smaller pool to
/// stay CI-feasible; plain `cargo test` keeps the full-size workload.
fn chaos_armed() -> bool {
    std::env::var_os("COD_FAILPOINTS").is_some()
}

fn dataset() -> pcod::datasets::Dataset {
    let n = if chaos_armed() { 60 } else { 300 };
    pcod::datasets::amazon_like_scaled(n, 9)
}

fn pooled_cfg(threads: usize) -> CodConfig {
    CodConfig {
        k: 3,
        theta: if chaos_armed() { 4 } else { 15 },
        pool: true,
        parallelism: Parallelism::Threads(threads),
        ..CodConfig::default()
    }
}

/// Every method against a few query nodes.
fn workload(g: &AttributedGraph) -> Vec<Query> {
    let n = g.num_nodes() as u32;
    let mut queries = Vec::new();
    for &q in &[0u32, 9 % n, 42 % n, 133 % n] {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        queries.push(Query::codu(q));
        queries.push(Query::new(q, attr, Method::Codr));
        queries.push(Query::new(q, attr, Method::CodlMinus));
        queries.push(Query::new(q, attr, Method::Codl));
    }
    queries
}

/// Strips the unequatable error type for whole-sequence comparison.
fn comparable(
    results: Vec<CodResult<Option<CodAnswer>>>,
) -> Vec<Result<Option<CodAnswer>, String>> {
    results
        .into_iter()
        .map(|r| r.map_err(|e| e.to_string()))
        .collect()
}

// ---------------------------------------------------------------------------
// Pool determinism: grown ≡ fresh, at every thread count.
// ---------------------------------------------------------------------------

/// A pool grown in three top-ups at t threads equals a pool sampled fresh
/// to the final size serially — graph for graph, edge for edge. This is
/// the cache's foundational identity: reuse can never change a sample.
#[test]
fn grown_pool_matches_fresh_pool_across_thread_counts() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let g = data.graph.csr();
    let universe: Arc<Vec<NodeId>> = Arc::new((0..g.num_nodes() as NodeId).collect());
    let fresh = RrPoolEntry::new(Some(2), universe.clone(), false);
    let (fv, _) = fresh.ensure(
        g,
        Model::WeightedCascade,
        220,
        Parallelism::Threads(1),
        None,
    );
    assert_eq!(fv.len(), 220);
    for t in THREADS {
        let grown = RrPoolEntry::new(Some(2), universe.clone(), false);
        for target in [40, 100, 220] {
            grown.ensure(
                g,
                Model::WeightedCascade,
                target,
                Parallelism::Threads(t),
                None,
            );
        }
        let (gv, stats) = grown.ensure(
            g,
            Model::WeightedCascade,
            220,
            Parallelism::Threads(t),
            None,
        );
        assert_eq!(stats.graphs, 0, "threads {t}: final ensure is a pure read");
        assert_eq!(gv.len(), 220);
        assert!(
            gv.iter().eq(fv.iter()),
            "threads {t}: grown pool diverged from fresh pool"
        );
        assert_eq!(grown.chunk_lens(), vec![40, 60, 120], "threads {t}");
    }
}

/// Restricted pools (chain universes smaller than the graph) replay the
/// same way: growth at any thread count reproduces the serial fresh pool.
#[test]
fn restricted_grown_pool_matches_fresh_pool() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let g = data.graph.csr();
    let mut members = data
        .communities
        .iter()
        .max_by_key(|c| c.len())
        .filter(|c| c.len() >= 4)
        .expect("a non-trivial community exists")
        .clone();
    members.sort_unstable();
    members.dedup();
    let universe = Arc::new(members);
    let fresh = RrPoolEntry::new(None, universe.clone(), true);
    let (fv, _) = fresh.ensure(
        g,
        Model::WeightedCascade,
        150,
        Parallelism::Threads(1),
        None,
    );
    for t in THREADS {
        let grown = RrPoolEntry::new(None, universe.clone(), true);
        grown.ensure(g, Model::WeightedCascade, 70, Parallelism::Threads(t), None);
        let (gv, _) = grown.ensure(
            g,
            Model::WeightedCascade,
            150,
            Parallelism::Threads(t),
            None,
        );
        assert!(
            gv.iter().eq(fv.iter()),
            "threads {t}: restricted top-up diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Engine reuse: warm answers ≡ cold answers, all four methods.
// ---------------------------------------------------------------------------

/// On a pool-enabled engine, a warm pass (every pool already resident)
/// answers bit-identically to the cold pass that built the pools, for all
/// four methods and at every thread count — and all thread counts agree
/// with the serial reference.
#[test]
fn warm_pool_answers_match_cold_pool_answers_for_every_method() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let g = &data.graph;
    let queries = workload(g);
    let mut reference: Option<Vec<Result<Option<CodAnswer>, String>>> = None;
    for t in THREADS {
        let engine = CodEngine::new(g.clone(), pooled_cfg(t));
        // Prebuild the index with a fixed stream so no pass consumes a
        // mid-stream index-build draw (seed-replay idiom).
        engine.ensure_himor(&mut SmallRng::seed_from_u64(1000));
        let mut rng = SmallRng::seed_from_u64(3000);
        let cold = comparable(engine.query_batch(&queries, &mut rng));
        let miss_floor = engine.metrics().counters.get(Counter::PoolMisses);
        assert!(miss_floor > 0, "threads {t}: cold pass never built a pool");
        assert!(engine.pool_stats().pools > 0, "threads {t}: no pool cached");
        let mut rng = SmallRng::seed_from_u64(3000);
        let warm = comparable(engine.query_batch(&queries, &mut rng));
        assert_eq!(
            warm, cold,
            "threads {t}: warm pool answers diverged from cold"
        );
        let m = engine.metrics();
        assert!(
            m.counters.get(Counter::PoolHits) > 0,
            "threads {t}: warm pass never hit the pool cache"
        );
        assert_eq!(
            m.counters.get(Counter::PoolMisses),
            miss_floor,
            "threads {t}: warm pass built a pool it should have found"
        );
        assert!(cold.iter().any(|r| matches!(r, Ok(Some(_)))));
        match &reference {
            None => reference = Some(cold),
            Some(r) => assert_eq!(&cold, r, "threads {t}: diverged from serial reference"),
        }
    }
}

/// `clear_cache` drops every pool and bumps the epoch; the rebuilt pools
/// are key-derived, so post-clear answers equal pre-clear answers exactly.
#[test]
fn clear_cache_invalidates_pools_and_rebuilds_identically() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let engine = CodEngine::new(data.graph.clone(), pooled_cfg(2));
    let queries = workload(&data.graph);
    engine.ensure_himor(&mut SmallRng::seed_from_u64(1000));
    let mut rng = SmallRng::seed_from_u64(3000);
    let before = comparable(engine.query_batch(&queries, &mut rng));
    assert!(engine.pool_stats().pools > 0);
    let epoch = engine.pool_epoch();
    engine.clear_cache();
    assert_eq!(
        engine.pool_epoch(),
        epoch + 1,
        "clear_cache must bump the epoch"
    );
    assert_eq!(
        engine.pool_stats().pools,
        0,
        "clear_cache must drop every pool"
    );
    let mut rng = SmallRng::seed_from_u64(3000);
    let after = comparable(engine.query_batch(&queries, &mut rng));
    assert_eq!(after, before, "re-derived pools changed answers");
}

// ---------------------------------------------------------------------------
// DynamicCod: every mutation invalidates, a stale pool is never served.
// ---------------------------------------------------------------------------

/// `pooled_cfg` with serial parallelism: `DynamicCod` then keeps the
/// legacy lazy contract (no flush-on-query repair), so queries on a dirty
/// node take the pooled compressed path — exactly the window this test
/// observes. The seeded flush pipeline's scoped eviction is covered by
/// `tests/mutation.rs`.
fn serial_pooled_cfg() -> CodConfig {
    CodConfig {
        parallelism: Parallelism::Serial,
        ..pooled_cfg(1)
    }
}

/// Every `DynamicCod` mutation path — edge insert, edge removal, attribute
/// edit, explicit rebuild — bumps the pool epoch, and scoped eviction
/// drops every pool the mutation could stale. All pools in this workload
/// span the query node (edge edits) or are keyed to its attribute
/// (attribute edits), so each mutation must leave zero pools resident: a
/// pool sampled on the old graph does not survive to the first
/// post-mutation lookup.
#[test]
fn dynamic_mutations_invalidate_the_pool() {
    let _g = guard();
    failpoint::disarm_all();
    let data = dataset();
    let g = &data.graph;
    let mut dyn_cod = DynamicCod::new(g, serial_pooled_cfg(), &mut SmallRng::seed_from_u64(11));
    let q: NodeId = 9;
    let attr = g.node_attrs(q).first().copied().unwrap_or(0);
    let ask = |d: &mut DynamicCod| {
        d.query(q, attr, &mut SmallRng::seed_from_u64(500))
            .expect("valid query")
    };
    ask(&mut dyn_cod);
    // Pick an endpoint not adjacent to q so the insert is a real edit.
    let other = (0..g.num_nodes() as NodeId)
        .find(|&v| v != q && !g.csr().neighbors(q).contains(&v))
        .expect("a non-neighbor exists");

    // Edge insert.
    let epoch = dyn_cod.pool_epoch();
    assert!(dyn_cod.insert_edge(q, other));
    assert_eq!(
        dyn_cod.pool_epoch(),
        epoch + 1,
        "insert_edge must invalidate"
    );
    assert_eq!(dyn_cod.pool_stats().pools, 0);
    // The edit touches q, so the index path is unusable and the query runs
    // the pooled compressed evaluation: the pool repopulates, and a repeat
    // query reuses it with the identical answer.
    let cold = ask(&mut dyn_cod);
    assert!(
        dyn_cod.pool_stats().pools > 0,
        "post-mutation query did not rebuild the pool"
    );
    let warm = ask(&mut dyn_cod);
    assert_eq!(warm, cold, "warm pooled answer diverged after mutation");

    // Edge removal.
    let epoch = dyn_cod.pool_epoch();
    assert!(dyn_cod.remove_edge(q, other));
    assert_eq!(
        dyn_cod.pool_epoch(),
        epoch + 1,
        "remove_edge must invalidate"
    );
    assert_eq!(dyn_cod.pool_stats().pools, 0);

    // Attribute edit (repopulate first so the drop is observable).
    ask(&mut dyn_cod);
    assert!(dyn_cod.pool_stats().pools > 0);
    let epoch = dyn_cod.pool_epoch();
    dyn_cod.set_attrs(q, vec![attr]).expect("q is in range");
    assert_eq!(dyn_cod.pool_epoch(), epoch + 1, "set_attrs must invalidate");
    assert_eq!(dyn_cod.pool_stats().pools, 0);

    // Explicit rebuild.
    ask(&mut dyn_cod);
    let epoch = dyn_cod.pool_epoch();
    dyn_cod.rebuild(&mut SmallRng::seed_from_u64(12));
    assert_eq!(dyn_cod.pool_epoch(), epoch + 1, "rebuild must invalidate");
    assert_eq!(dyn_cod.pool_stats().pools, 0);
}

// ---------------------------------------------------------------------------
// Failpoints on the shared-pool paths.
// ---------------------------------------------------------------------------

/// An injected panic during pool growth surfaces as `CodError::Internal`
/// and leaves the engine (and its pool cache) fully serviceable.
#[test]
fn pool_grow_panic_is_isolated_and_recoverable() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    let data = dataset();
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("failpoint"));
        if !injected {
            eprintln!("{info}");
        }
    }));
    failpoint::disarm_all();
    failpoint::arm(Site::PoolGrow, Action::Panic);
    let engine = CodEngine::new(data.graph.clone(), pooled_cfg(2));
    let mut rng = SmallRng::seed_from_u64(7777);
    let poisoned = engine.query_batch(&workload(&data.graph), &mut rng);
    let internals = poisoned
        .iter()
        .filter(|r| matches!(r, Err(CodError::Internal(m)) if m.contains("failpoint")))
        .count();
    assert!(internals > 0, "armed pool_grow panic never surfaced");
    failpoint::disarm_all();
    let mut rng = SmallRng::seed_from_u64(7777);
    let recovered = engine.query_batch(&workload(&data.graph), &mut rng);
    assert!(
        recovered.iter().all(|r| r.is_ok()),
        "engine not serviceable after pool_grow panic: {:?}",
        recovered.iter().find(|r| r.is_err())
    );
    assert!(recovered.iter().any(|r| matches!(r, Ok(Some(_)))));
    std::panic::set_hook(prior_hook);
}

/// Forced cancellation at the pooled fold degrades gracefully: bounded,
/// typed outcomes only, at least one query visibly degraded, and full
/// fidelity returns once the injection is gone.
#[test]
fn pool_fold_cancellation_degrades_gracefully() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    let data = dataset();
    failpoint::disarm_all();
    failpoint::arm(Site::PoolFold, Action::Cancel);
    // Limits must be armed for a token to exist; generous ones never fire
    // on their own, so every cancellation comes from the injection.
    let cfg = CodConfig {
        limits: QueryLimits {
            deadline: Some(Duration::from_secs(3600)),
            max_rr_edges: Some(u64::MAX / 2),
            max_memory_bytes: Some(usize::MAX / 2),
        },
        ..pooled_cfg(2)
    };
    let engine = CodEngine::new(data.graph.clone(), cfg);
    let mut rng = SmallRng::seed_from_u64(7777);
    let results = engine.query_batch(&workload(&data.graph), &mut rng);
    let mut fired = 0u64;
    for r in &results {
        match r {
            Ok(Some(a)) if a.degraded.is_some() => {
                assert!(a.uncertain, "degraded pooled answer not uncertain");
                fired += 1;
            }
            Ok(_) => {}
            Err(CodError::DeadlineExceeded) => fired += 1,
            Err(other) => panic!("unexpected error under pool_fold cancel: {other}"),
        }
    }
    assert!(fired > 0, "forced pool_fold cancellation never degraded");
    failpoint::disarm_all();
    let mut rng = SmallRng::seed_from_u64(7777);
    for r in engine.query_batch(&workload(&data.graph), &mut rng) {
        let r = r.unwrap_or_else(|e| panic!("post-recovery error: {e}"));
        if let Some(a) = r {
            assert!(a.degraded.is_none(), "stale degradation: {a:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Property: top-up schedules tile the index space injectively, gap-free.
// ---------------------------------------------------------------------------

fn ring(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any top-up schedule (arbitrary increments, arbitrary per-step
    /// thread counts) produces exactly the fresh pool of the final size:
    /// the chunks partition `0..total` in order (no index sampled twice,
    /// none skipped), which is only possible if every top-up drew exactly
    /// the missing suffix.
    #[test]
    fn any_topup_schedule_equals_the_fresh_pool(
        increments in proptest::collection::vec(1usize..40, 1..6),
        threads in proptest::collection::vec(1usize..5, 6),
    ) {
        let _g = guard();
        failpoint::disarm_all();
        let g = ring(20);
        let universe: Arc<Vec<NodeId>> = Arc::new((0..20).collect());
        let grown = RrPoolEntry::new(Some(1), universe.clone(), false);
        let mut target = 0usize;
        let mut expected_chunks = Vec::new();
        for (step, &inc) in increments.iter().enumerate() {
            target += inc;
            let (view, stats) = grown.ensure(
                &g,
                Model::WeightedCascade,
                target,
                Parallelism::Threads(threads[step % threads.len()]),
                None,
            );
            prop_assert_eq!(view.len(), target, "ensure left the pool short");
            prop_assert_eq!(stats.graphs, inc as u64);
            prop_assert_eq!(stats.topped_up, step > 0);
            expected_chunks.push(inc);
        }
        // Chunks tile 0..target contiguously: lengths sum to the total and
        // match the schedule exactly — injective and gap-free.
        prop_assert_eq!(grown.chunk_lens(), expected_chunks);
        prop_assert_eq!(grown.len(), target);
        let fresh = RrPoolEntry::new(Some(1), universe, false);
        let (fv, _) = fresh.ensure(&g, Model::WeightedCascade, target, Parallelism::Threads(1), None);
        let (gv, _) = grown.ensure(&g, Model::WeightedCascade, target, Parallelism::Threads(1), None);
        prop_assert!(gv.iter().eq(fv.iter()), "schedule diverged from fresh pool");
    }
}
