//! Engine-boundary validation: invalid queries fail identically through
//! every entry point, and validation happens before any randomness or
//! heavy work is consumed.

use pcod::prelude::*;
use rand::prelude::*;

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(120, 5)
}

fn cfg() -> CodConfig {
    CodConfig {
        k: 3,
        theta: 8,
        parallelism: Parallelism::Threads(2),
        ..CodConfig::default()
    }
}

/// Every variant — each facade and each engine method — rejects the same
/// invalid `(q, attr)` with the same `InvalidQuery` message. Validation is
/// hoisted to the engine boundary, so a drift between variants means a
/// facade grew its own (wrong) checks.
#[test]
fn invalid_queries_error_identically_through_every_variant() {
    let data = dataset();
    let g = &data.graph;
    let n = g.num_nodes();
    let bad_node: NodeId = n as NodeId + 7;
    let bad_attr: AttrId = g.num_attrs() as AttrId + 3;
    let mut rng = SmallRng::seed_from_u64(11);

    let codu = Codu::new(g, cfg());
    let codr = Codr::new(g, cfg());
    let cm = CodlMinus::new(g, cfg());
    let codl = Codl::new(g, cfg(), &mut rng);
    let engine = CodEngine::new(g.clone(), cfg());

    // Out-of-range node, through all eight entry points.
    let node_errors: Vec<String> = vec![
        codu.query(bad_node, &mut rng).unwrap_err().to_string(),
        codr.query(bad_node, 0, &mut rng).unwrap_err().to_string(),
        cm.query(bad_node, 0, &mut rng).unwrap_err().to_string(),
        codl.query(bad_node, 0, &mut rng).unwrap_err().to_string(),
        engine
            .query(Query::codu(bad_node), &mut rng)
            .unwrap_err()
            .to_string(),
        engine
            .query(Query::new(bad_node, 0, Method::Codr), &mut rng)
            .unwrap_err()
            .to_string(),
        engine
            .query(Query::new(bad_node, 0, Method::CodlMinus), &mut rng)
            .unwrap_err()
            .to_string(),
        engine
            .query(Query::new(bad_node, 0, Method::Codl), &mut rng)
            .unwrap_err()
            .to_string(),
    ];
    let expected =
        format!("invalid query: query node {bad_node} out of range (graph has {n} nodes)");
    for (i, msg) in node_errors.iter().enumerate() {
        assert_eq!(msg, &expected, "variant {i} diverged");
    }

    // Unknown attribute, through every attribute-taking entry point.
    let m = g.num_attrs();
    let attr_errors: Vec<String> = vec![
        codr.query(0, bad_attr, &mut rng).unwrap_err().to_string(),
        cm.query(0, bad_attr, &mut rng).unwrap_err().to_string(),
        codl.query(0, bad_attr, &mut rng).unwrap_err().to_string(),
        engine
            .query(Query::new(0, bad_attr, Method::Codr), &mut rng)
            .unwrap_err()
            .to_string(),
        engine
            .query(Query::new(0, bad_attr, Method::CodlMinus), &mut rng)
            .unwrap_err()
            .to_string(),
        engine
            .query(Query::new(0, bad_attr, Method::Codl), &mut rng)
            .unwrap_err()
            .to_string(),
    ];
    let expected = format!(
        "invalid query: unknown attribute id {bad_attr} (graph has {m} interned attributes)"
    );
    for (i, msg) in attr_errors.iter().enumerate() {
        assert_eq!(msg, &expected, "variant {i} diverged");
    }

    // Bad config parameters surface through the engine the same way.
    for bad in [CodConfig { k: 0, ..cfg() }, CodConfig { theta: 0, ..cfg() }] {
        let engine = CodEngine::new(g.clone(), bad);
        for method in [Method::Codu, Method::Codr, Method::CodlMinus, Method::Codl] {
            let err = engine
                .query(
                    Query {
                        node: 0,
                        attr: Some(0),
                        method,
                    },
                    &mut rng,
                )
                .unwrap_err();
            assert!(
                matches!(err, CodError::InvalidQuery(_)),
                "{method:?}: {err}"
            );
        }
    }
}

/// Invalid queries are settled during planning, before any seed draw: the
/// caller's RNG stream is untouched, so a batch with rejected queries in it
/// yields the same answers as the same batch without them.
#[test]
fn rejected_queries_consume_no_randomness() {
    let data = dataset();
    let g = &data.graph;
    let bad = g.num_nodes() as NodeId + 1;
    let valid: Vec<Query> = vec![Query::codu(0), Query::new(3, 0, Method::Codr)];
    let mut with_junk: Vec<Query> = vec![Query::codu(bad)];
    with_junk.extend(&valid);
    with_junk.insert(2, Query::new(bad, 0, Method::Codr));

    let run = |queries: &[Query]| {
        let engine = CodEngine::new(g.clone(), cfg());
        let mut rng = SmallRng::seed_from_u64(21);
        engine
            .query_batch(queries, &mut rng)
            .into_iter()
            .filter_map(|r| r.ok())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(&with_junk),
        run(&valid),
        "rejected queries shifted the seed stream"
    );
}

/// The engine never builds the HIMOR index for queries that fail
/// validation — the expensive lazy artifacts stay untouched.
#[test]
fn invalid_codl_query_does_not_build_the_index() {
    let data = dataset();
    let g = &data.graph;
    let engine = CodEngine::new(g.clone(), cfg());
    let bad = g.num_nodes() as NodeId + 1;
    let mut rng = SmallRng::seed_from_u64(5);
    let err = engine.query(Query::new(bad, 0, Method::Codl), &mut rng);
    assert!(err.is_err());
    assert!(
        engine.himor().is_none(),
        "validation must run before index construction"
    );
}
