//! Process-level tests of the `cod` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cod_bin() -> PathBuf {
    // Integration tests live next to the binary under target/<profile>/.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("cod{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(cod_bin())
        .args(args)
        .output()
        .expect("spawn cod binary")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let o = run(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
    assert!(stdout(&o).contains("characteristic community"));
}

#[test]
fn missing_graph_source_fails_cleanly() {
    let o = run(&["stats"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--edges") || stderr(&o).contains("--preset"));
}

#[test]
fn unknown_command_fails() {
    let o = run(&["frobnicate", "--preset", "cora"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn stats_on_preset() {
    let o = run(&["stats", "--preset", "citeseer"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("nodes:       2110"));
    assert!(out.contains("clustering:"));
}

#[test]
fn generate_then_query_round_trip() {
    let dir = std::env::temp_dir();
    let edges = dir.join("cod_cli_test_edges.txt");
    let attrs = dir.join("cod_cli_test_attrs.txt");
    let o = run(&[
        "generate",
        "--preset",
        "citeseer",
        "--out-edges",
        edges.to_str().unwrap(),
        "--out-attrs",
        attrs.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));

    let o = run(&[
        "query",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--node",
        "17",
        "--k",
        "5",
        "--theta",
        "5",
        "--method",
        "codl",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(
        out.contains("characteristic community of node 17")
            || out.contains("no community where node 17"),
        "unexpected output: {out}"
    );
    std::fs::remove_file(&edges).ok();
    std::fs::remove_file(&attrs).ok();
}

#[test]
fn hierarchy_command_prints_levels() {
    let o = run(&[
        "hierarchy", "--preset", "cora", "--node", "3", "--levels", "4", "--theta", "5",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("|H(q)|"));
    assert!(out.contains("level | size"));
}

#[test]
fn out_of_range_node_is_an_error() {
    let o = run(&["query", "--preset", "cora", "--node", "999999"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"));
}

#[test]
fn baseline_command_runs() {
    let o = run(&[
        "baseline", "--preset", "cora", "--node", "10", "--method", "acq",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
}
