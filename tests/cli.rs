//! Process-level tests of the `cod` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cod_bin() -> PathBuf {
    // Integration tests live next to the binary under target/<profile>/.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("cod{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(cod_bin())
        .args(args)
        .output()
        .expect("spawn cod binary")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let o = run(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
    assert!(stdout(&o).contains("characteristic community"));
}

#[test]
fn missing_graph_source_fails_cleanly() {
    let o = run(&["stats"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--edges") || stderr(&o).contains("--preset"));
}

#[test]
fn unknown_command_fails() {
    let o = run(&["frobnicate", "--preset", "cora"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
}

#[test]
fn stats_on_preset() {
    let o = run(&["stats", "--preset", "citeseer"]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("nodes:       2110"));
    assert!(out.contains("clustering:"));
}

#[test]
fn generate_then_query_round_trip() {
    let dir = std::env::temp_dir();
    let edges = dir.join("cod_cli_test_edges.txt");
    let attrs = dir.join("cod_cli_test_attrs.txt");
    let o = run(&[
        "generate",
        "--preset",
        "citeseer",
        "--out-edges",
        edges.to_str().unwrap(),
        "--out-attrs",
        attrs.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));

    let o = run(&[
        "query",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--node",
        "17",
        "--k",
        "5",
        "--theta",
        "5",
        "--method",
        "codl",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(
        out.contains("characteristic community of node 17")
            || out.contains("no community where node 17"),
        "unexpected output: {out}"
    );
    std::fs::remove_file(&edges).ok();
    std::fs::remove_file(&attrs).ok();
}

#[test]
fn hierarchy_command_prints_levels() {
    let o = run(&[
        "hierarchy",
        "--preset",
        "cora",
        "--node",
        "3",
        "--levels",
        "4",
        "--theta",
        "5",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("|H(q)|"));
    assert!(out.contains("level | size"));
}

#[test]
fn out_of_range_node_is_an_error() {
    let o = run(&["query", "--preset", "cora", "--node", "999999"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"));
}

#[test]
fn baseline_command_runs() {
    let o = run(&[
        "baseline", "--preset", "cora", "--node", "10", "--method", "acq",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
}

// ---------------------------------------------------------------------------
// Failure modes: every error path below must exit non-zero with a one-line
// diagnostic on stderr — never a panic backtrace.
// ---------------------------------------------------------------------------

/// Asserts a clean failure: non-zero exit, a diagnostic that starts with
/// `error:`, and no panic backtrace.
fn assert_clean_failure(o: &Output) -> String {
    let err = stderr(o);
    assert!(
        !o.status.success(),
        "expected failure, stdout: {}",
        stdout(o)
    );
    assert!(
        !err.contains("panicked") && !err.contains("RUST_BACKTRACE"),
        "panic leaked to the user: {err}"
    );
    assert!(err.starts_with("error:"), "no diagnostic prefix: {err}");
    err
}

/// Temp file that cleans up after itself; names are unique per process.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str, contents: &[u8]) -> Self {
        let path =
            std::env::temp_dir().join(format!("cod_cli_{tag}_{}_{tag}.txt", std::process::id()));
        std::fs::write(&path, contents).expect("write temp fixture");
        TempFile(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A 30-node path graph where every node carries attribute `A`.
fn tiny_graph_files() -> (TempFile, TempFile) {
    let edges: String = (0..29).map(|v| format!("{v} {}\n", v + 1)).collect();
    let attrs: String = (0..30).map(|v| format!("{v} A\n")).collect();
    (
        TempFile::new("edges", edges.as_bytes()),
        TempFile::new("attrs", attrs.as_bytes()),
    )
}

#[test]
fn missing_edge_file_is_a_one_line_error() {
    let o = run(&[
        "query",
        "--edges",
        "/nonexistent/no_such_graph.txt",
        "--node",
        "0",
    ]);
    let err = assert_clean_failure(&o);
    assert!(err.contains("loading graph"), "unexpected: {err}");
    assert_eq!(err.trim_end().lines().count(), 1, "not one line: {err}");
}

#[test]
fn malformed_edge_list_reports_the_line_number() {
    let bad = TempFile::new("badedges", b"0 1\n1 2\nthis is not an edge\n");
    let o = run(&["stats", "--edges", bad.path()]);
    let err = assert_clean_failure(&o);
    assert!(err.contains("line 3"), "line number missing: {err}");
    assert_eq!(err.trim_end().lines().count(), 1, "not one line: {err}");
}

#[test]
fn zero_k_is_rejected_without_panic() {
    let (edges, attrs) = tiny_graph_files();
    let o = run(&[
        "query",
        "--edges",
        edges.path(),
        "--attrs",
        attrs.path(),
        "--node",
        "3",
        "--k",
        "0",
    ]);
    let err = assert_clean_failure(&o);
    assert!(err.contains("k must be at least 1"), "unexpected: {err}");
}

#[test]
fn corrupt_index_is_fatal_under_strict() {
    let (edges, attrs) = tiny_graph_files();
    let idx = TempFile::new("strictidx", b"this is not a CODX file at all");
    let o = run(&[
        "query",
        "--edges",
        edges.path(),
        "--attrs",
        attrs.path(),
        "--node",
        "3",
        "--index",
        idx.path(),
        "--strict-index",
    ]);
    let err = assert_clean_failure(&o);
    assert!(err.contains("corrupt index"), "unexpected: {err}");
}

#[test]
fn corrupt_index_triggers_rebuild_and_resave_by_default() {
    let (edges, attrs) = tiny_graph_files();
    let idx = TempFile::new("rebuildidx", b"garbage garbage garbage");
    let common = [
        "query",
        "--edges",
        edges.path(),
        "--attrs",
        attrs.path(),
        "--node",
        "3",
        "--theta",
        "5",
        "--index",
        idx.path(),
    ];
    let o = run(&common);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let err = stderr(&o);
    assert!(
        err.contains("warning") && err.contains("rebuilding"),
        "no warning: {err}"
    );
    assert!(err.contains("saved rebuilt index"), "no resave: {err}");

    // The resaved file must now load cleanly, even under --strict-index.
    let mut strict: Vec<&str> = common.to_vec();
    strict.push("--strict-index");
    let o = run(&strict);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    assert!(
        stderr(&o).contains("loaded HIMOR index"),
        "stderr: {}",
        stderr(&o)
    );
}

#[test]
fn index_with_wrong_graph_is_rejected_under_strict() {
    let (edges, attrs) = tiny_graph_files();
    let idx = TempFile::new("wrongidx", b"");
    // Build a valid index for the tiny graph...
    let o = run(&[
        "query",
        "--edges",
        edges.path(),
        "--attrs",
        attrs.path(),
        "--node",
        "3",
        "--theta",
        "5",
        "--index",
        idx.path(),
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    // ...then present it for a different graph.
    let o = run(&[
        "query",
        "--preset",
        "cora",
        "--node",
        "3",
        "--index",
        idx.path(),
        "--strict-index",
    ]);
    let err = assert_clean_failure(&o);
    assert!(err.contains("nodes"), "unexpected: {err}");
}

#[test]
fn zero_budget_fails_cleanly_and_tight_budget_flags_the_answer() {
    let (edges, attrs) = tiny_graph_files();
    let common = [
        "query",
        "--edges",
        edges.path(),
        "--attrs",
        attrs.path(),
        "--node",
        "3",
        "--method",
        "codl-",
        "--k",
        "1",
        "--theta",
        "50",
    ];
    let mut zero: Vec<&str> = common.to_vec();
    zero.extend(["--budget", "0"]);
    let err = assert_clean_failure(&run(&zero));
    assert!(err.contains("budget"), "unexpected: {err}");

    let mut tight: Vec<&str> = common.to_vec();
    tight.extend(["--budget", "4"]);
    let o = run(&tight);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    // A 4-sample evaluation either finds nothing or must flag best-effort.
    assert!(
        out.contains("no community") || out.contains("best-effort"),
        "unexpected output: {out}"
    );
}

#[test]
fn mutate_replays_a_log_with_per_event_outcomes() {
    let dir = std::env::temp_dir().join(format!("cod-mutate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("events.txt");
    std::fs::write(
        &log,
        "# churn burst\nadd 0 1500\ndel 0 1500\nadd 3 900\nadd 3 900\nattrs 7 0,2\n",
    )
    .unwrap();
    let o = run(&[
        "mutate",
        "--preset",
        "citeseer",
        "--log",
        log.to_str().unwrap(),
        "--theta",
        "2",
        "--k",
        "2",
        "--seed",
        "9",
    ]);
    assert!(o.status.success(), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("add 0 1500"), "{out}");
    assert!(out.contains("repaired"), "{out}");
    assert!(out.contains("no-op"), "{out}"); // the duplicate insert
    assert!(out.contains("refreshed"), "{out}"); // the attrs event
    assert!(out.contains("repairs"), "{out}");
    assert!(out.contains("full rebuilds"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutate_without_log_fails_cleanly() {
    let o = run(&["mutate", "--preset", "citeseer"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--log"));
}

#[test]
fn mutate_rejects_a_malformed_log_with_a_line_number() {
    let dir = std::env::temp_dir().join(format!("cod-mutate-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("bad.txt");
    std::fs::write(&log, "add 0 1\nfrobnicate 2 3\n").unwrap();
    let o = run(&[
        "mutate",
        "--preset",
        "citeseer",
        "--log",
        log.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("line 2"), "{}", stderr(&o));
    std::fs::remove_dir_all(&dir).ok();
}
