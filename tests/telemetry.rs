//! Observability-layer guarantees: counters are exact where the paper's
//! cost model pins them down, per-query traces sum to the engine registry,
//! and telemetry never perturbs answers or RNG draw order.

use pcod::prelude::*;
use rand::prelude::*;

/// An 8-node cycle: connected, so the base hierarchy's root community is
/// the whole vertex set and a CODU chain spans the graph.
fn cycle8() -> AttributedGraph {
    let mut b = GraphBuilder::new(8);
    for v in 0..8 {
        b.add_edge(v, (v + 1) % 8);
    }
    AttributedGraph::unattributed(b.build())
}

/// On a chain that spans the graph under `UniformIc(1.0)`, every quantity
/// of the Θ·ω sampling cost is deterministic: Θ = θ·|V| RR graphs are
/// drawn (no source can fall outside the chain), each activates every arc
/// (ω = 2|E| per graph), and HFS classifies exactly |V| nodes per graph.
#[test]
fn counters_are_exact_on_a_known_toy_graph() {
    let g = cycle8();
    let theta = 3;
    let cfg = CodConfig {
        k: 8, // every node is top-8 in an 8-node community: the answer is total
        theta,
        model: Model::UniformIc(1.0),
        trace: true,
        ..CodConfig::default()
    };
    let engine = CodEngine::new(g, cfg);
    let mut rng = SmallRng::seed_from_u64(7);
    let ans = engine
        .query(Query::codu(2), &mut rng)
        .expect("valid query")
        .expect("k = 8 answers with the root community");
    let trace = ans.trace.as_ref().expect("trace requested");
    let c = &trace.counters;

    let big_theta = (theta * 8) as u64; // Θ = θ·|V|
    assert_eq!(c.get(Counter::RrGraphsSampled), big_theta);
    // p = 1.0 activates every arc of the connected graph per sample.
    assert_eq!(c.get(Counter::RrEdgesTraversed), big_theta * 16);
    // HFS sees all |V| nodes of every RR graph, each either recorded into
    // a chain bucket or pruned.
    assert_eq!(
        c.get(Counter::HfsNodesVisited) + c.get(Counter::HfsNodesPruned),
        big_theta * 8
    );
    assert!(c.get(Counter::TopKHeapOps) > 0, "top-k scan ran");
    // CODU touches neither the recluster path nor the HIMOR index.
    for idle in [
        Counter::ReclusterBuilds,
        Counter::HimorBuilds,
        Counter::HimorBucketMerges,
        Counter::HimorIndexHits,
        Counter::CacheHits,
        Counter::CacheMisses,
    ] {
        assert_eq!(c.get(idle), 0, "{} should be idle under CODU", idle.name());
    }

    // The single query is the engine's whole history, so the registry
    // holds exactly this trace.
    let snapshot = engine.metrics();
    for (counter, value) in c.iter() {
        assert_eq!(snapshot.counters.get(counter), value);
    }
    assert_eq!(snapshot.queries, 1);
}

fn dataset() -> pcod::datasets::Dataset {
    pcod::datasets::amazon_like_scaled(120, 5)
}

fn mixed_queries(g: &AttributedGraph) -> Vec<Query> {
    let attr_of = |q: NodeId| g.node_attrs(q).first().copied().unwrap_or(0);
    vec![
        Query::codu(3),
        Query::new(3, attr_of(3), Method::Codr),
        Query::new(17, attr_of(17), Method::CodlMinus),
        Query::new(17, attr_of(17), Method::Codl),
        Query::new(40, attr_of(40), Method::Codl),
        Query::new(17, attr_of(17), Method::Codr),
    ]
}

/// Per-query trace deltas sum component-wise to the engine registry: every
/// counter increment and every phase nanosecond lands in exactly one
/// query's trace, and the registry records exactly those sinks.
#[test]
fn batch_traces_sum_to_registry_aggregates() {
    let data = dataset();
    let cfg = CodConfig {
        k: 30,
        theta: 6,
        trace: true,
        ..CodConfig::default()
    };
    let queries = mixed_queries(&data.graph);
    let engine = CodEngine::new(data.graph, cfg);
    let mut rng = SmallRng::seed_from_u64(5);
    let results = engine.query_batch(&queries, &mut rng);

    let mut traces = Vec::new();
    for r in &results {
        let ans = r
            .as_ref()
            .expect("valid batch")
            .as_ref()
            .expect("k = 30 answers every query; tighten params if this trips");
        traces.push(ans.trace.expect("trace requested"));
    }

    let snapshot = engine.metrics();
    assert_eq!(snapshot.queries, queries.len() as u64);
    assert_eq!(snapshot.errors, 0);
    for counter in pcod::cod::COUNTERS {
        let summed: u64 = traces.iter().map(|t| t.counters.get(counter)).sum();
        assert_eq!(
            snapshot.counters.get(counter),
            summed,
            "counter {} diverged from the sum of per-query deltas",
            counter.name()
        );
    }
    for phase in pcod::cod::PHASES {
        let summed: u64 = traces.iter().map(|t| t.phases.get(phase)).sum();
        assert_eq!(
            snapshot.phase_nanos.get(phase),
            summed,
            "phase {} diverged from the sum of per-query deltas",
            phase.name()
        );
    }
    // Every traced query contributed one histogram observation.
    assert_eq!(snapshot.latency_count(), queries.len() as u64);

    // The work happened: sampling ran and phase time accrued somewhere.
    assert!(snapshot.counters.get(Counter::RrGraphsSampled) > 0);
    assert!(snapshot.phase_nanos.total() > 0);
}

/// Seed-replay equivalence: with the seed fixed, enabling telemetry
/// changes neither any answer nor the RNG draw order, at every thread
/// count. Counters are identical too — they observe the evaluation, they
/// never steer it.
#[test]
fn telemetry_on_off_is_bit_identical_across_thread_counts() {
    let data = dataset();
    let queries = mixed_queries(&data.graph);
    for threads in [1usize, 2, 8] {
        let cfg = |trace: bool| CodConfig {
            k: 30,
            theta: 6,
            parallelism: Parallelism::Threads(threads),
            trace,
            ..CodConfig::default()
        };
        let run = |trace: bool| {
            let engine = CodEngine::new(data.graph.clone(), cfg(trace));
            let mut rng = SmallRng::seed_from_u64(99);
            let results = engine.query_batch(&queries, &mut rng);
            let answers: Vec<Option<CodAnswer>> = results
                .into_iter()
                .map(|r| r.expect("valid batch"))
                .collect();
            (answers, rng.next_u64(), engine.metrics())
        };
        let (plain_answers, plain_draw, plain_metrics) = run(false);
        let (traced_answers, traced_draw, traced_metrics) = run(true);
        // CodAnswer equality ignores the trace diagnostics, so this
        // compares members, ranks, sources, and uncertainty flags.
        assert_eq!(
            plain_answers, traced_answers,
            "answers diverged at {threads} threads"
        );
        assert_eq!(
            plain_draw, traced_draw,
            "RNG draw order diverged at {threads} threads"
        );
        for counter in pcod::cod::COUNTERS {
            assert_eq!(
                plain_metrics.counters.get(counter),
                traced_metrics.counters.get(counter),
                "counter {} depends on timer arming at {threads} threads",
                counter.name()
            );
        }
        // Timers are armed only under trace: the plain run must not have
        // read the clock at all.
        assert_eq!(plain_metrics.phase_nanos.total(), 0);
        assert!(traced_metrics.phase_nanos.total() > 0);
        // Untimed sinks are excluded from the latency histogram.
        assert_eq!(plain_metrics.latency_count(), 0);
        assert_eq!(traced_metrics.latency_count(), queries.len() as u64);
    }
}

/// Pool-cache counters ride the same per-query sink as every other
/// counter: the cold query's trace carries exactly one miss, the warm
/// repeat exactly one hit, the registry holds their sum, and the
/// Prometheus exposition names all four pool series plus the cache gauges.
#[test]
fn pool_counters_flow_through_traces_and_registry() {
    let data = dataset();
    let cfg = CodConfig {
        k: 30,
        theta: 6,
        pool: true,
        trace: true,
        ..CodConfig::default()
    };
    let engine = CodEngine::new(data.graph, cfg);
    let mut rng = SmallRng::seed_from_u64(5);
    let trace_of = |engine: &CodEngine, rng: &mut SmallRng| {
        engine
            .query(Query::codu(3), rng)
            .expect("valid query")
            .expect("k = 30 answers")
            .trace
            .expect("trace requested")
    };
    let cold = trace_of(&engine, &mut rng);
    assert_eq!(
        cold.counters.get(Counter::PoolMisses),
        1,
        "cold query misses once"
    );
    assert_eq!(cold.counters.get(Counter::PoolHits), 0);
    assert!(
        cold.counters.get(Counter::RrGraphsSampled) > 0,
        "cold query fills the pool"
    );
    let warm = trace_of(&engine, &mut rng);
    assert_eq!(
        warm.counters.get(Counter::PoolHits),
        1,
        "warm query hits once"
    );
    assert_eq!(warm.counters.get(Counter::PoolMisses), 0);
    assert_eq!(
        warm.counters.get(Counter::RrGraphsSampled),
        0,
        "warm query folds the pool without sampling"
    );
    let snapshot = engine.metrics();
    assert_eq!(snapshot.counters.get(Counter::PoolHits), 1);
    assert_eq!(snapshot.counters.get(Counter::PoolMisses), 1);
    assert_eq!(snapshot.counters.get(Counter::PoolEvictedBytes), 0);
    let text = engine.metrics_text();
    for needle in [
        "cod_pool_hits_total 1",
        "cod_pool_misses_total 1",
        "cod_pool_topups_total 0",
        "cod_pool_evicted_bytes_total 0",
        "cod_pool_cache_pools 1",
        "cod_pool_cache_budget_bytes",
        "cod_pool_cache_resident_bytes",
        "cod_pool_cache_epoch 0",
    ] {
        assert!(
            text.contains(needle),
            "exposition lacks {needle:?}:\n{text}"
        );
    }
}

/// A query that needs more samples than the pool holds tops it up — and
/// the trace records the top-up plus only the *new* sampling work, never
/// a resample of what was already pooled.
#[test]
fn pool_topups_are_counted_and_sample_only_the_missing_suffix() {
    use pcod::cod::compressed::compressed_cod_pooled;
    use pcod::cod::pool::RrPoolEntry;
    use pcod::cod::recluster::build_hierarchy;
    use std::sync::Arc;

    let data = dataset();
    let g = data.graph.csr();
    let dendro = build_hierarchy(g, Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let q = 3u32;
    let chain = DendroChain::new(&dendro, &lca, q).expect("chain exists");
    let universe: Arc<Vec<NodeId>> = Arc::new(chain.universe().to_vec());
    let n = universe.len() as u64;
    let pool = RrPoolEntry::new(None, universe, false);
    let mut ws = QueryScratch::new();
    let mut run = |theta_pn: usize| {
        ws.reset_telemetry(false);
        compressed_cod_pooled(
            g,
            Model::WeightedCascade,
            &chain,
            q,
            3,
            theta_pn,
            None,
            &pool,
            Parallelism::Threads(1),
            Some(&mut ws),
            None,
        )
        .expect("valid query");
        ws.take_trace()
    };
    let fill = run(2);
    assert_eq!(
        fill.counters.get(Counter::PoolTopups),
        0,
        "initial fill is not a top-up"
    );
    assert_eq!(fill.counters.get(Counter::RrGraphsSampled), 2 * n);
    let topup = run(4);
    assert_eq!(topup.counters.get(Counter::PoolTopups), 1);
    assert_eq!(
        topup.counters.get(Counter::RrGraphsSampled),
        2 * n,
        "top-up samples only the 2·|V| missing graphs"
    );
    let warm = run(4);
    assert_eq!(warm.counters.get(Counter::PoolTopups), 0);
    assert_eq!(warm.counters.get(Counter::RrGraphsSampled), 0);
}

/// `--trace` answers carry a render-ready line; sanity-check its shape so
/// the CLI contract (phase timings then counters) stays stable.
#[test]
fn trace_render_line_mentions_each_phase_and_counter_group() {
    let g = cycle8();
    let cfg = CodConfig {
        k: 8,
        theta: 2,
        trace: true,
        ..CodConfig::default()
    };
    let engine = CodEngine::new(g, cfg);
    let mut rng = SmallRng::seed_from_u64(1);
    let ans = engine
        .query(Query::codu(0), &mut rng)
        .unwrap()
        .expect("answer exists");
    let line = ans.trace.unwrap().render_line();
    for needle in ["trace:", "plan ", "sample ", "topk ", "rr ", "hfs "] {
        assert!(line.contains(needle), "{line:?} lacks {needle:?}");
    }
}

/// Mutation telemetry flows end to end: applied events, repair/rebuild
/// decisions and scoped pool evictions all land in the registry snapshot
/// and come out of the Prometheus exposition under their stable names —
/// the same families `cod-serve`'s `/metrics` publishes (there with zero
/// values, asserted in the serve suite).
#[test]
fn mutation_counters_flow_through_the_exposition() {
    use pcod::cod::dynamic::DynamicCod;
    let data = pcod::datasets::amazon_like_scaled(120, 8);
    let g = &data.graph;
    let cfg = CodConfig {
        k: 3,
        theta: 10,
        parallelism: Parallelism::Threads(1),
        ..CodConfig::default()
    };
    let mut d = DynamicCod::with_seed(g, cfg, 5);
    d.set_rebuild_threshold(10.0);
    let mut rng = SmallRng::seed_from_u64(1);
    assert!(d.insert_edge(0, 60));
    assert!(d.insert_edge(1, 61));
    assert!(d.remove_edge(0, 60));
    d.set_attrs(5, vec![0]).unwrap();
    let _ = d.flush(&mut rng).unwrap(); // one localized repair
    d.set_rebuild_threshold(0.0);
    assert!(d.insert_edge(2, 62));
    let _ = d.flush(&mut rng).unwrap(); // one forced full rebuild

    let snap = d.metrics_snapshot();
    assert_eq!(snap.mutations_insert, 3);
    assert_eq!(snap.mutations_remove, 1);
    assert_eq!(snap.mutations_set_attrs, 1);
    assert_eq!(snap.repairs, 1);
    assert_eq!(snap.full_rebuilds, 1);

    let text = snap.render_prometheus(&CacheStats::default(), &d.pool_stats());
    for needle in [
        "cod_mutations_total{kind=\"insert\"} 3",
        "cod_mutations_total{kind=\"remove\"} 1",
        "cod_mutations_total{kind=\"set_attrs\"} 1",
        "cod_repairs_total 1",
        "cod_full_rebuilds_total 1",
        "cod_pool_scoped_evictions_total",
    ] {
        assert!(
            text.contains(needle),
            "exposition lacks {needle:?}:\n{text}"
        );
    }
}

/// The durability telemetry rides the same registry → snapshot →
/// exposition path as every other counter: a recovered engine's WAL and
/// recovery tallies land in `/metrics` with the documented names.
#[test]
fn durability_counters_flow_through_engine_exposition() {
    let g = cycle8();
    let engine = CodEngine::new(g, CodConfig::default());
    engine.record_wal_activity(12, 4);
    engine.record_recovery(7, 3_500_000_000);

    let snap = engine.metrics();
    assert_eq!(snap.wal_appended_records, 12);
    assert_eq!(snap.wal_fsyncs, 4);
    assert_eq!(snap.recovery_replayed_records, 7);
    assert_eq!(snap.recovery_nanos, 3_500_000_000);

    let text = engine.metrics_text();
    for needle in [
        "cod_wal_appended_records_total 12",
        "cod_wal_fsyncs_total 4",
        "cod_recovery_replayed_records_total 7",
        "cod_recovery_seconds 3.500000000",
    ] {
        assert!(
            text.contains(needle),
            "exposition lacks {needle:?}:\n{text}"
        );
    }
}
