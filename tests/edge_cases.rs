//! Cross-crate edge-case tests: tiny graphs, degenerate parameters, and
//! behavioural contracts that unit tests don't cover.

use pcod::cod::chain::Chain;
use pcod::cod::compressed::compressed_cod;
use pcod::cod::recluster::build_hierarchy;
use pcod::graph::subgraph::Subgraph;
use pcod::prelude::*;
use rand::prelude::*;

fn two_node_graph() -> AttributedGraph {
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1);
    AttributedGraph::unattributed(b.build())
}

#[test]
fn cod_on_two_nodes() {
    let g = two_node_graph();
    let cfg = CodConfig {
        k: 1,
        theta: 100,
        ..CodConfig::default()
    };
    let codu = Codu::new(&g, cfg);
    let mut rng = SmallRng::seed_from_u64(1);
    let ans = codu
        .query(0, &mut rng)
        .unwrap()
        .expect("a pair has one community");
    assert_eq!(ans.members, vec![0, 1]);
}

#[test]
fn k_at_least_community_size_accepts_every_level() {
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, 0).unwrap();
    let mut rng = SmallRng::seed_from_u64(2);
    // k = |V| dominates every rank: best level must be the chain top.
    let out = compressed_cod(
        g.csr(),
        Model::WeightedCascade,
        &chain,
        0,
        10,
        200,
        &mut rng,
    )
    .unwrap();
    assert_eq!(out.best_level, Some(chain.len() - 1));
    for (h, &r) in out.ranks.iter().enumerate() {
        assert!(r <= chain.size(h), "rank bounded by community size");
    }
}

#[test]
fn codr_with_unused_attribute_degenerates_to_codu_hierarchy() {
    // An attribute carried by no node leaves g_ℓ unweighted, so CODR's
    // hierarchy equals CODU's.
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let unused_attr = 77;
    let r = pcod::cod::recluster::global_recluster(g, unused_attr, 1.0, Linkage::Average);
    let u = build_hierarchy(g.csr(), Linkage::Average);
    for v in 0..g.num_nodes() as NodeId {
        assert_eq!(r.root_path(v).len(), u.root_path(v).len());
    }
    // Same community structure vertex by vertex.
    for x in 0..r.num_vertices() as u32 {
        assert_eq!(r.members_sorted(x), u.members_sorted(x));
    }
}

#[test]
fn identity_subgraph_round_trips() {
    let data = pcod::datasets::paper_example();
    let g = data.graph.csr();
    let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    let s = Subgraph::induced(g, &all);
    assert_eq!(s.csr.num_edges(), g.num_edges());
    for v in 0..g.num_nodes() as NodeId {
        assert_eq!(s.local(v), Some(v));
        assert_eq!(s.parent(v), v);
    }
}

#[test]
fn dendrogram_merges_round_trip() {
    let data = pcod::datasets::cora_like(3);
    let d = build_hierarchy(data.graph.csr(), Linkage::Average);
    let d2 = Dendrogram::from_merges(d.num_leaves(), &d.merges());
    assert_eq!(d.num_vertices(), d2.num_vertices());
    for v in 0..d.num_vertices() as u32 {
        assert_eq!(d.size(v), d2.size(v));
        assert_eq!(d.depth(v), d2.depth(v));
        assert_eq!(d.parent(v), d2.parent(v));
    }
}

#[test]
fn divisive_hierarchy_supports_cod_queries() {
    // The COD machinery is hierarchy-agnostic (paper §II): run compressed
    // evaluation over a divisive bisection hierarchy.
    let data = pcod::datasets::citeseer_like(4);
    let g = &data.graph;
    let dendro = pcod::hierarchy::bisect(g.csr());
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(5);
    let queries = pcod::datasets::gen_queries(g, 6, &mut rng);
    for &(q, _) in &queries {
        let chain = DendroChain::new(&dendro, &lca, q).unwrap();
        let out =
            compressed_cod(g.csr(), Model::WeightedCascade, &chain, q, 5, 10, &mut rng).unwrap();
        assert_eq!(out.ranks.len(), chain.len());
        if let Some(h) = out.best_level {
            assert!(chain.members(h).binary_search(&q).is_ok());
        }
    }
}

#[test]
fn divisive_hierarchy_is_much_flatter_on_skewed_graphs() {
    let data = pcod::datasets::retweet_like(6);
    let g = data.graph.csr();
    let agglomerative = build_hierarchy(g, Linkage::Average);
    let divisive = pcod::hierarchy::bisect(g);
    assert!(
        divisive.avg_chain_len() * 3.0 < agglomerative.avg_chain_len(),
        "divisive {:.1} vs agglomerative {:.1}",
        divisive.avg_chain_len(),
        agglomerative.avg_chain_len()
    );
}

#[test]
fn baselines_reject_out_of_attribute_queries() {
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let ml = g.interner().get("ML").unwrap();
    // Node 0 carries DB only.
    assert!(pcod::search::acq_query(g, 0, ml, 1).is_none());
    assert!(pcod::search::cac_query(g, 0, ml).is_none());
}

#[test]
fn lore_on_every_node_of_the_example_is_stable() {
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    for q in 0..10u32 {
        for attr in 0..2u32 {
            if let Some(choice) =
                pcod::cod::lore::select_recluster_community(g, &dendro, &lca, q, attr)
            {
                // The chosen community must contain q and at least 2 nodes.
                assert!(dendro.contains(choice.vertex, q));
                assert!(dendro.size(choice.vertex) >= 2);
                assert!(choice.score > 0.0);
            }
        }
    }
}

#[test]
fn quality_measures_on_whole_graph() {
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let all: Vec<NodeId> = (0..10).collect();
    let rho = pcod::graph::measures::topology_density(g.csr(), &all);
    assert!((rho - 15.0 / 45.0).abs() < 1e-12);
    let db = g.interner().get("DB").unwrap();
    let phi = pcod::graph::measures::attribute_density(g, &all, db);
    assert!((phi - 0.6).abs() < 1e-12);
    assert_eq!(pcod::graph::measures::conductance(g.csr(), &all), 0.0);
}

#[test]
fn chain_universe_matches_top_community() {
    let data = pcod::datasets::citeseer_like(7);
    let g = &data.graph;
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, 42).unwrap();
    assert_eq!(chain.universe(), chain.members(chain.len() - 1));
}

#[test]
fn himor_on_two_node_graph() {
    let g = two_node_graph();
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let mut rng = SmallRng::seed_from_u64(8);
    let index = HimorIndex::build(
        g.csr(),
        Model::WeightedCascade,
        &dendro,
        &lca,
        100,
        &mut rng,
    );
    // Both nodes have exactly one path community (the root) and rank <= 2.
    for v in 0..2u32 {
        assert_eq!(index.ranks_of(v).len(), 1);
        assert!(index.ranks_of(v)[0] <= 2);
    }
    assert_eq!(
        index.largest_top_k(&dendro, 0, None, 2),
        Some(dendro.root())
    );
}

#[test]
fn zero_budget_reports_the_chain_wide_requirement() {
    // The `required` figure in BudgetExhausted is the chain-wide draw
    // count θ·|universe| a full evaluation would make — not the per-node
    // θ. The two-node graph makes the distinction visible: θ = 7 per node
    // but the universe has 2 nodes, so the query needs 14 draws.
    let g = two_node_graph();
    let cfg = CodConfig {
        k: 1,
        theta: 7,
        budget: Some(0),
        ..CodConfig::default()
    };
    let codu = Codu::new(&g, cfg);
    let mut rng = SmallRng::seed_from_u64(3);
    let err = codu.query(0, &mut rng).unwrap_err();
    match err {
        CodError::BudgetExhausted { budget, required } => {
            assert_eq!(budget, 0);
            assert_eq!(required, 14, "required must be theta * |universe|");
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    assert_eq!(
        err.to_string(),
        "sample budget exhausted: 0 samples allowed but the query needs at least 14"
    );
}

#[test]
fn pooled_zero_budget_nets_already_pooled_samples() {
    // On the shared-pool path, `required` is the chain-wide θ·|universe|
    // *net of samples already pooled*: the budget only has to pay for new
    // draws. θ = 7 over a 2-node universe needs 14 samples; with 5 pooled,
    // a zero budget is short exactly 9 — and once the pool holds all 14,
    // a zero budget answers outright.
    use pcod::cod::compressed::{compressed_cod_pooled, resolve_theta_pooled};
    use pcod::cod::pool::RrPoolEntry;
    use pcod::cod::recluster::build_hierarchy;
    use std::sync::Arc;

    let g = two_node_graph();
    let dendro = build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, 0).unwrap();
    let universe: Arc<Vec<NodeId>> = Arc::new(chain.universe().to_vec());
    assert_eq!(universe.len(), 2);
    let pool = RrPoolEntry::new(None, universe, false);
    pool.ensure(
        g.csr(),
        Model::WeightedCascade,
        5,
        Parallelism::Threads(1),
        None,
    );
    let evaluate = |budget: Option<usize>| {
        compressed_cod_pooled(
            g.csr(),
            Model::WeightedCascade,
            &chain,
            0,
            1,
            7,
            budget,
            &pool,
            Parallelism::Threads(1),
            None,
            None,
        )
    };
    match evaluate(Some(0)).unwrap_err() {
        CodError::BudgetExhausted { budget, required } => {
            assert_eq!(budget, 0);
            assert_eq!(required, 9, "required must net the 5 pooled samples");
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    // The resolver alone, for the exact netting arithmetic.
    assert_eq!(resolve_theta_pooled(7, 2, None, 5).unwrap(), (14, false));
    assert_eq!(resolve_theta_pooled(7, 2, Some(4), 5).unwrap(), (9, true));
    assert_eq!(
        resolve_theta_pooled(7, 2, Some(0), 14).unwrap(),
        (14, false)
    );
    // A fully stocked pool makes a zero budget sufficient: no new draws.
    pool.ensure(
        g.csr(),
        Model::WeightedCascade,
        14,
        Parallelism::Threads(1),
        None,
    );
    let out = evaluate(Some(0)).expect("zero budget suffices on a full pool");
    assert!(
        !out.truncated,
        "nothing was cut: the pool covered θ·|universe|"
    );
    assert_eq!(out.theta, 14);
    assert_eq!(
        out,
        evaluate(None).unwrap(),
        "budgeted ≡ unbudgeted on a full pool"
    );
}
