//! Hierarchy-recovery validation: the clustering substrate must actually
//! find the planted communities of the dataset presets — the realism check
//! behind the `DESIGN.md` §5 substitutions.

use pcod::cod::recluster::build_hierarchy;
use pcod::graph::generators::{blocks_from_sizes, lfr_like, make_connected, planted_partition};
use pcod::graph::partition::{adjusted_rand_index, nmi};
use pcod::prelude::*;
use rand::prelude::*;

fn labels_from_blocks(n: usize, blocks: &[Vec<NodeId>]) -> Vec<u32> {
    let mut labels = vec![0u32; n];
    for (i, b) in blocks.iter().enumerate() {
        for &v in b {
            labels[v as usize] = i as u32;
        }
    }
    labels
}

#[test]
fn nnchain_recovers_planted_partition() {
    let mut rng = SmallRng::seed_from_u64(11);
    let n = 300;
    let blocks = blocks_from_sizes(&[30; 10]);
    let g = planted_partition(n, &blocks, 0.35, 0.004, &mut rng);
    let g = make_connected(&g, &mut rng);
    let truth = labels_from_blocks(n, &blocks);
    let dendro = build_hierarchy(&g, Linkage::Average);
    let cut = dendro.cut(10);
    let score = nmi(&truth, &cut);
    assert!(
        score > 0.75,
        "NMI {score} too low for a clean planted partition"
    );
    assert!(adjusted_rand_index(&truth, &cut) > 0.5);
}

#[test]
fn divisive_bisection_also_recovers_structure() {
    let mut rng = SmallRng::seed_from_u64(12);
    let n = 256;
    let blocks = blocks_from_sizes(&[64; 4]);
    let g = planted_partition(n, &blocks, 0.3, 0.005, &mut rng);
    let g = make_connected(&g, &mut rng);
    let truth = labels_from_blocks(n, &blocks);
    let dendro = pcod::hierarchy::bisect(&g);
    let cut = dendro.cut(4);
    let score = nmi(&truth, &cut);
    assert!(score > 0.6, "bisection NMI {score}");
}

#[test]
fn recovery_degrades_with_lfr_mixing() {
    let mut rng = SmallRng::seed_from_u64(13);
    let n = 300;
    let blocks = blocks_from_sizes(&[50; 6]);
    let truth = labels_from_blocks(n, &blocks);
    let mut scores = Vec::new();
    for &mu in &[0.05f64, 0.5] {
        let g = lfr_like(n, &blocks, 4, 20, 2.5, mu, &mut rng);
        let g = make_connected(&g, &mut rng);
        let dendro = build_hierarchy(&g, Linkage::Average);
        scores.push(nmi(&truth, &dendro.cut(6)));
    }
    assert!(
        scores[0] > scores[1] + 0.1,
        "mu=0.05 NMI {} should beat mu=0.5 NMI {}",
        scores[0],
        scores[1]
    );
    assert!(
        scores[0] > 0.5,
        "clean LFR should be recoverable: {}",
        scores[0]
    );
}

#[test]
fn preset_hierarchies_align_with_planted_communities() {
    // The experiment presets must expose community structure to the COD
    // hierarchy — otherwise the Fig. 7 attribute densities would be
    // meaningless.
    let data = pcod::datasets::amazon_like_scaled(3000, 14);
    let g = data.graph.csr();
    let n = g.num_nodes();
    let truth = labels_from_blocks(n, &data.communities);
    let dendro = build_hierarchy(g, Linkage::Average);
    let cut = dendro.cut(data.communities.len());
    let score = nmi(&truth, &cut);
    assert!(score > 0.5, "amazon-like preset NMI {score}");
}
