//! Serving-tier suite: endpoint contract, error mapping, overload
//! shedding, graceful drain, and chaos under armed failpoints.
//!
//! The contract under test (DESIGN.md §12):
//! * the five endpoints answer with the documented statuses, and every
//!   engine failure maps to its documented HTTP status;
//! * overload sheds with an orderly `503 + Retry-After` — never a
//!   connection reset — at both rungs (socket accept queue, engine
//!   admission control), while `/healthz` keeps answering 200;
//! * graceful drain: `/readyz` flips to 503 while the listener stays up,
//!   in-flight requests complete, new queries are refused, and a drain
//!   overrun forces stragglers through the engine kill switch as degraded
//!   answers rather than dropped connections;
//! * under `COD_FAILPOINTS=all`-style delays at every engine and serve
//!   site plus sustained overload, the tier stays responsive and recovers
//!   to a clean steady state with zero leaked admission permits.
//!
//! Failpoint state is process-global: every test serializes behind one
//! lock, and injection scenarios gate on `failpoint::compiled_in()`.

use pcod::cod::failpoint::{self, Action, Site, SERVE_SITES, SITES};
use pcod::prelude::*;
use pcod::serve::{serve, ServeConfig, ServerHandle};
use rand::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn engine(max_inflight: Option<usize>) -> Arc<CodEngine> {
    let data = pcod::datasets::amazon_like_scaled(120, 8);
    let cfg = CodConfig {
        k: 3,
        theta: 10,
        max_inflight,
        ..CodConfig::default()
    };
    Arc::new(CodEngine::new(data.graph, cfg))
}

fn start(engine: Arc<CodEngine>, patch: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        default_deadline: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    };
    patch(&mut cfg);
    serve(engine, cfg).expect("bind ephemeral port")
}

/// One full `Connection: close` HTTP exchange. Returns (status, head,
/// body); `Err` means the socket itself failed (refused, reset, timeout) —
/// which the robustness contract forbids on every served path.
fn send(addr: &str, raw: &str) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(20)))?;
    stream.set_write_timeout(Some(Duration::from_secs(20)))?;
    stream.write_all(raw.as_bytes())?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    let (head, body) = out
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    Ok((status, head.to_owned(), body.to_owned()))
}

fn get(addr: &str, target: &str) -> std::io::Result<(u16, String, String)> {
    send(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, target: &str, body: &str) -> std::io::Result<(u16, String, String)> {
    send(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn retry_after_secs(head: &str) -> Option<u64> {
    head.lines().find_map(|l| {
        let (name, val) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| val.trim().parse().ok())
            .flatten()
    })
}

/// The five endpoints answer with their documented statuses and bodies.
#[test]
fn all_endpoints_answer_with_documented_statuses() {
    let _g = guard();
    failpoint::disarm_all();
    let engine = engine(None);
    let handle = start(Arc::clone(&engine), |_| {});
    let addr = handle.addr().to_string();

    let (s, _, b) = get(&addr, "/healthz").unwrap();
    assert_eq!((s, b.as_str()), (200, "ok\n"));
    let (s, _, b) = get(&addr, "/readyz").unwrap();
    assert_eq!((s, b.as_str()), (200, "ready\n"));

    let (s, _, b) = get(&addr, "/metrics").unwrap();
    assert_eq!(s, 200);
    for needle in [
        "cod_queries_total",
        "cod_uptime_seconds",
        "cod_build_info{",
        "cod_http_requests_total",
        "cod_http_shed_socket_total",
        "cod_http_worker_panics_total",
        "cod_pool_hits_total",
        "cod_pool_misses_total",
        "cod_pool_topups_total",
        "cod_pool_evicted_bytes_total",
        "cod_pool_cache_pools",
        "cod_pool_cache_epoch",
        "cod_mutations_total{kind=\"insert\"}",
        "cod_mutations_total{kind=\"set_attrs\"}",
        "cod_repairs_total",
        "cod_full_rebuilds_total",
        "cod_pool_scoped_evictions_total",
    ] {
        assert!(b.contains(needle), "metrics missing {needle}: {b}");
    }

    let (s, _, b) = get(&addr, "/query?node=0&method=codu&deadline_ms=20000").unwrap();
    assert_eq!(s, 200, "{b}");
    assert!(b.starts_with("{\"answer\":"), "{b}");

    let (s, _, b) = post(
        &addr,
        "/query_batch",
        r#"{"queries":[{"node":0,"method":"codu"},{"node":1,"method":"codu"}],"deadline_ms":20000}"#,
    )
    .unwrap();
    assert_eq!(s, 200, "{b}");
    assert!(b.starts_with("{\"results\":["), "{b}");
    assert_eq!(
        b.matches("\"answer\"").count() + b.matches("\"error\"").count(),
        2
    );

    let report = handle.shutdown();
    assert!(report.drained_in_time);
    assert_eq!(report.http_stats.panics, 0);
    assert_eq!(engine.inflight(), 0);
}

/// Every client failure mode maps to its documented status — and the
/// mapping is exercised through real sockets, not unit calls.
#[test]
fn error_mapping_covers_the_documented_taxonomy() {
    let _g = guard();
    failpoint::disarm_all();
    let engine = engine(None);
    let handle = start(engine, |c| c.max_request_bytes = 256);
    let addr = handle.addr().to_string();

    // 404 / 405 routing.
    assert_eq!(get(&addr, "/nonsense").unwrap().0, 404);
    assert_eq!(post(&addr, "/healthz", "").unwrap().0, 405);
    assert_eq!(get(&addr, "/query_batch").unwrap().0, 405);

    // 400: malformed JSON, bad node, unknown attribute.
    assert_eq!(post(&addr, "/query", "{not json").unwrap().0, 400);
    assert_eq!(get(&addr, "/query?node=abc").unwrap().0, 400);
    let (s, _, b) = get(&addr, "/query?node=99999").unwrap();
    assert_eq!(s, 400);
    assert!(b.contains("out of range"), "{b}");
    let (s, _, b) = get(&addr, "/query?node=0&attr=no_such_attr").unwrap();
    assert_eq!(s, 400);
    assert!(b.contains("unknown attribute"), "{b}");
    let (s, _, b) = post(&addr, "/query_batch", r#"{"queries":[]}"#).unwrap();
    assert_eq!(s, 400, "{b}");

    // 413: the body cap.
    let big = format!(r#"{{"node":0,"pad":"{}"}}"#, "x".repeat(512));
    assert_eq!(post(&addr, "/query", &big).unwrap().0, 413);

    // 400 again: malformed request line.
    assert_eq!(send(&addr, "NONSENSE\r\n\r\n").unwrap().0, 400);

    handle.shutdown();
}

/// A hopeless deadline still yields an orderly answer: 200 with a
/// degraded-rung answer, or a mapped 504 — never a hang or a reset. The
/// armed sampling delay guarantees the deadline actually trips (a fast
/// index hit can legitimately beat a 1ms deadline on a tiny graph).
#[test]
fn hopeless_deadline_degrades_or_maps_to_504() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    failpoint::arm(Site::SampleBatch, Action::Delay(Duration::from_millis(50)));
    let engine = engine(None);
    let handle = start(engine, |_| {});
    let addr = handle.addr().to_string();
    let (s, _, b) = get(&addr, "/query?node=0&method=codr&deadline_ms=1").unwrap();
    match s {
        200 => assert!(b.contains("\"degraded\":\""), "200 without a rung tag: {b}"),
        504 => assert!(b.contains("deadline"), "{b}"),
        other => panic!("expected 200-degraded or 504, got {other}: {b}"),
    }
    failpoint::disarm_all();
    handle.shutdown();
}

/// Overload storm at both shedding rungs: a tiny accept queue and
/// `max_inflight = 1` under slow evaluations. Every request must end in an
/// orderly 200 or 503+Retry-After (no socket errors), `/healthz` must
/// answer 200 throughout, and the engine must drain to zero permits.
#[test]
fn overload_storm_sheds_orderly_while_healthz_answers() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    failpoint::arm(Site::EvalWorker, Action::Delay(Duration::from_millis(40)));
    let engine = engine(Some(1));
    let handle = start(Arc::clone(&engine), |c| {
        c.workers = 4;
        c.accept_queue = 2;
    });
    let addr = handle.addr().to_string();

    const STORMERS: usize = 16; // 16× the admission cap, 2+ rounds deep
    let stop = AtomicBool::new(false);
    let (served, shed) = std::thread::scope(|scope| {
        // Liveness probe: hammer /healthz for the whole storm.
        let health = {
            let (addr, stop) = (addr.clone(), &stop);
            scope.spawn(move || {
                let mut polls = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let (s, _, b) = get(&addr, "/healthz").expect("healthz socket error");
                    assert_eq!(s, 200, "healthz failed mid-storm: {b}");
                    polls += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                polls
            })
        };
        let stormers: Vec<_> = (0..STORMERS)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let node = i % 16;
                    let (s, head, b) = get(
                        &addr,
                        &format!("/query?node={node}&method=codu&deadline_ms=20000"),
                    )
                    .expect("storm request hit a socket error (reset?)");
                    match s {
                        200 => true,
                        503 => {
                            assert!(
                                retry_after_secs(&head).is_some(),
                                "503 without Retry-After: {head}"
                            );
                            assert!(b.contains("overloaded"), "{b}");
                            false
                        }
                        other => panic!("storm request got {other}: {b}"),
                    }
                })
            })
            .collect();
        let outcomes: Vec<bool> = stormers.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        let polls = health.join().unwrap();
        assert!(polls > 0, "health probe never ran");
        let served = outcomes.iter().filter(|&&ok| ok).count();
        (served, outcomes.len() - served)
    });
    assert!(served > 0, "storm starved completely");
    assert!(shed > 0, "nothing shed: the storm never built pressure");

    // Recovery: disarmed, the same server answers cleanly.
    failpoint::disarm_all();
    let (s, _, b) = get(&addr, "/query?node=0&method=codu&deadline_ms=20000").unwrap();
    assert_eq!(s, 200, "no recovery after the storm: {b}");
    assert!(!b.contains("\"degraded\":\""), "{b}");

    let stats = handle.http_stats();
    assert_eq!(stats.panics, 0);
    assert!(
        stats.shed_socket + stats.shed_engine >= shed as u64,
        "client saw {shed} sheds, server recorded {stats:?}"
    );
    let report = handle.shutdown();
    assert!(report.drained_in_time);
    assert_eq!(engine.inflight(), 0, "leaked admission permit after storm");
}

/// Graceful drain, swept across worker-pool sizes: `/readyz` flips to 503
/// while the listener still answers, in-flight requests complete with
/// clean 200s, new queries are refused with 503 + Retry-After, and the
/// drain finishes inside the deadline.
#[test]
fn graceful_drain_completes_in_flight_and_refuses_new_queries() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    for workers in [1usize, 2, 8] {
        failpoint::disarm_all();
        failpoint::arm(Site::EvalWorker, Action::Delay(Duration::from_millis(150)));
        let engine = engine(None);
        let handle = start(Arc::clone(&engine), |c| {
            c.workers = workers;
            c.drain_deadline = Duration::from_secs(10);
        });
        let addr = handle.addr().to_string();
        assert_eq!(get(&addr, "/readyz").unwrap().0, 200);

        std::thread::scope(|scope| {
            let inflight = {
                let addr = addr.clone();
                scope.spawn(move || get(&addr, "/query?node=0&method=codu&deadline_ms=20000"))
            };
            // Let the in-flight request reach its evaluation delay, then
            // start draining underneath it.
            std::thread::sleep(Duration::from_millis(50));
            handle.begin_drain();

            // The listener is still up: readyz answers — with a 503.
            let (s, _, b) = get(&addr, "/readyz").expect("listener closed during drain");
            assert_eq!((s, b.as_str()), (503, "draining\n"), "workers={workers}");
            // Health and metrics stay observable.
            assert_eq!(get(&addr, "/healthz").unwrap().0, 200);
            assert_eq!(get(&addr, "/metrics").unwrap().0, 200);
            // New queries are refused with a retriable 503.
            let (s, head, b) = get(&addr, "/query?node=1&method=codu").unwrap();
            assert_eq!(s, 503, "workers={workers}: {b}");
            assert!(retry_after_secs(&head).is_some(), "{head}");

            // The in-flight request completes cleanly during the drain.
            let (s, _, b) = inflight.join().unwrap().expect("in-flight dropped");
            assert_eq!(s, 200, "workers={workers}: {b}");
            assert!(!b.contains("\"degraded\":\""), "drain degraded it: {b}");
        });

        failpoint::disarm_all();
        let report = handle.shutdown();
        assert!(report.drained_in_time, "workers={workers}");
        assert_eq!(report.http_stats.panics, 0);
        assert!(report.http_stats.draining_rejects >= 1, "workers={workers}");
        assert_eq!(engine.inflight(), 0, "workers={workers}");
    }
}

/// Drain-deadline overrun: a straggler slower than the drain budget is
/// forced through the engine kill switch and still receives an orderly
/// response — a degraded 200 or a mapped 504, never a dropped connection.
#[test]
fn drain_overrun_degrades_stragglers_instead_of_dropping_them() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    failpoint::arm(Site::EvalWorker, Action::Delay(Duration::from_millis(400)));
    let engine = engine(None);
    let handle = start(Arc::clone(&engine), |c| {
        c.drain_deadline = Duration::from_millis(50);
    });
    let addr = handle.addr().to_string();

    std::thread::scope(|scope| {
        let straggler = {
            let addr = addr.clone();
            scope.spawn(move || get(&addr, "/query?node=0&method=codu&deadline_ms=60000"))
        };
        std::thread::sleep(Duration::from_millis(100));
        // Shutdown drains for 50ms, overruns, fires the kill switch, and
        // must still join every thread because the straggler degrades at
        // its next checkpoint instead of running to completion.
        let report = handle.shutdown();
        assert!(
            !report.drained_in_time,
            "straggler finished implausibly fast"
        );

        let (s, _, b) = straggler.join().unwrap().expect("straggler dropped");
        match s {
            200 => assert!(
                b.contains("\"degraded\":\"") || b.contains("\"answer\""),
                "{b}"
            ),
            504 => assert!(b.contains("deadline"), "{b}"),
            other => panic!("straggler got {other}: {b}"),
        }
    });
    failpoint::disarm_all();
    assert_eq!(engine.inflight(), 0);
}

/// An injected panic at every serve site surfaces as a 500 (or a counted
/// drop at the accept site) and never kills a worker or the acceptor: the
/// server keeps answering afterwards with zero leaked permits.
#[test]
fn panic_at_every_serve_site_is_isolated() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    let engine = engine(None);
    let handle = start(Arc::clone(&engine), |c| c.workers = 2);
    let addr = handle.addr().to_string();

    for site in SERVE_SITES {
        failpoint::disarm_all();
        failpoint::arm(site, Action::Panic);
        for _ in 0..3 {
            match get(&addr, "/query?node=0&method=codu&deadline_ms=20000") {
                Ok((s, _, _)) => assert_eq!(s, 500, "{site:?}: panic not mapped to 500"),
                // A panic between response-write start and flush may tear
                // the connection; the server surviving is the contract.
                Err(_) if site == Site::RespWrite => {}
                Err(e) => panic!("{site:?}: socket error instead of 500: {e}"),
            }
        }
        failpoint::disarm_all();
        let (s, _, b) = get(&addr, "/query?node=0&method=codu&deadline_ms=20000")
            .unwrap_or_else(|e| panic!("{site:?}: server dead after panics: {e}"));
        assert_eq!(s, 200, "{site:?}: no recovery: {b}");
    }

    let stats = handle.http_stats();
    assert!(stats.panics >= 9, "panics not counted: {stats:?}");
    let report = handle.shutdown();
    assert!(report.drained_in_time);
    assert_eq!(engine.inflight(), 0);
}

/// The chaos soak: 1ms delays armed at every engine **and** serve site
/// (the `COD_FAILPOINTS=all` baseline) while an open-loop storm of mixed
/// traffic — queries, batches, health probes, malformed requests — runs at
/// several times the admission cap. Every socket exchange must complete as
/// orderly HTTP, and afterwards the tier must return to a clean steady
/// state: zero inflight permits, zero worker panics, graceful drain.
#[test]
fn chaos_soak_under_global_failpoints_recovers_clean() {
    let _g = guard();
    if !failpoint::compiled_in() {
        return;
    }
    failpoint::disarm_all();
    for site in SITES.into_iter().chain(SERVE_SITES) {
        failpoint::arm(site, Action::Delay(Duration::from_millis(1)));
    }
    let engine = engine(Some(2));
    let handle = start(Arc::clone(&engine), |c| {
        c.workers = 4;
        c.accept_queue = 2;
    });
    let addr = handle.addr().to_string();

    const ROUNDS: usize = 3;
    const CLIENTS: usize = 12; // 6× the admission cap per round
    for round in 0..ROUNDS {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|i| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut rng =
                            SmallRng::seed_from_u64((round * CLIENTS + i) as u64 ^ 0xC0D);
                        match rng.random_range(0..5u32) {
                            0 => {
                                let (s, _, _) = get(&addr, "/healthz").expect("healthz io");
                                assert_eq!(s, 200, "healthz failed in chaos");
                            }
                            1 => {
                                let (s, _, _) = get(&addr, "/metrics").expect("metrics io");
                                assert!(s == 200 || s == 503, "metrics got {s}");
                            }
                            2 => {
                                let node = rng.random_range(0..120u32);
                                let (s, head, _) = get(
                                    &addr,
                                    &format!("/query?node={node}&method=codu&deadline_ms=10000"),
                                )
                                .expect("query io error in chaos");
                                assert!(s == 200 || s == 503, "query got {s}");
                                if s == 503 {
                                    assert!(retry_after_secs(&head).is_some(), "{head}");
                                }
                            }
                            3 => {
                                let (s, _, _) = post(
                                    &addr,
                                    "/query_batch",
                                    r#"{"queries":[{"node":0,"method":"codu"},{"node":7,"method":"codu"}],"deadline_ms":10000}"#,
                                )
                                .expect("batch io error in chaos");
                                assert!(s == 200 || s == 503, "batch got {s}");
                            }
                            _ => {
                                // Malformed traffic must map to 4xx, 503
                                // under overload, never tear the server.
                                let (s, _, _) =
                                    post(&addr, "/query", "{broken").expect("bad-req io");
                                assert!(s == 400 || s == 503, "malformed got {s}");
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    // Recovery to steady state: disarm everything, the same server answers
    // a clean query and the engine holds zero permits.
    failpoint::disarm_all();
    let (s, _, b) = get(&addr, "/query?node=0&method=codu&deadline_ms=20000").unwrap();
    assert_eq!(s, 200, "no steady state after chaos: {b}");
    assert!(b.starts_with("{\"answer\":"), "{b}");
    assert_eq!(engine.inflight(), 0, "leaked permit after chaos soak");

    let stats = handle.http_stats();
    assert_eq!(
        stats.panics, 0,
        "delay-only chaos must not panic: {stats:?}"
    );
    let report = handle.shutdown();
    assert!(report.drained_in_time, "drain failed after chaos");
    assert_eq!(engine.inflight(), 0);
}

/// Startup recovery: while the WAL replays, the listener is already up —
/// `/readyz` answers `503 RECOVERING`, `/healthz` stays 200, queries are
/// refused — and once recovery completes the same port serves normally
/// with the `cod_recovery_*` / `cod_wal_*` series exported.
#[test]
fn recovering_server_gates_readiness_until_replay_completes() {
    let _g = guard();
    failpoint::disarm_all();
    let engine = engine(None);
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let cfg = ServeConfig {
        default_deadline: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    };
    let recovering = pcod::serve::serve_recovering(cfg, move || {
        // Stand in for WAL replay: hold recovery open until the test has
        // probed the recovering surface, then surface replay telemetry.
        release_rx.recv().ok();
        engine.record_recovery(5, 2_000_000);
        engine.record_wal_activity(5, 3);
        Ok(pcod::serve::EngineHandle::Single(engine))
    })
    .expect("bind ephemeral port");
    let addr = recovering.addr().to_string();

    let (s, _, b) = get(&addr, "/readyz").unwrap();
    assert_eq!(s, 503, "not ready while recovering");
    assert!(
        b.contains("RECOVERING"),
        "readyz body must say RECOVERING: {b:?}"
    );
    let (s, _, b) = get(&addr, "/healthz").unwrap();
    assert_eq!(
        (s, b.as_str()),
        (200, "ok\n"),
        "liveness holds during recovery"
    );
    let (s, _, _) = get(&addr, "/query?node=0").unwrap();
    assert_eq!(s, 503, "queries are refused during recovery");
    let (s, _, b) = get(&addr, "/metrics").unwrap();
    assert_eq!(s, 200);
    assert!(b.contains("cod_recovering 1"), "{b}");

    release_tx.send(()).unwrap();
    let handle = recovering.wait_ready().expect("recovery completes");
    assert_eq!(
        handle.addr().to_string(),
        addr,
        "same port across promotion"
    );
    let (s, _, b) = get(&addr, "/readyz").unwrap();
    assert_eq!((s, b.as_str()), (200, "ready\n"));
    let (s, _, b) = get(&addr, "/metrics").unwrap();
    assert_eq!(s, 200);
    for needle in [
        "cod_recovery_replayed_records_total 5",
        "cod_recovery_seconds 0.002000000",
        "cod_wal_appended_records_total 5",
        "cod_wal_fsyncs_total 3",
    ] {
        assert!(b.contains(needle), "promoted /metrics missing {needle}");
    }
    let (s, _, b) = get(&addr, "/query?node=0&method=codu").unwrap();
    assert_eq!(s, 200, "promoted server must serve queries: {b}");

    let report = handle.shutdown();
    assert_eq!(report.http_stats.panics, 0);
}
