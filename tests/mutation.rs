//! Incremental-mutation pipeline suite: the determinism and invalidation
//! contracts of [`DynamicCod`]'s repair/patch path.
//!
//! The contracts under test:
//!
//! * **repaired ≡ rebuilt-from-scratch** — a seeded instance that flushes
//!   every mutation through the localized dendrogram repair + HIMOR patch
//!   answers every query bit-identically to an instance that rebuilds from
//!   scratch after every event (and to a fresh instance fed the whole
//!   mutation log at once), at 1, 2 and 8 threads, over a randomized
//!   200-event schedule on the cora-like dataset;
//! * **scoped invalidation** — an attribute edit evicts exactly the pooled
//!   RR graphs keyed to a touched attribute: disjoint attributes' pools
//!   stay resident (and still bump the invalidation epoch);
//! * **cooperative cancellation** — a token fired at the `dendro_repair`
//!   or `himor_patch` failpoint returns [`CodError::DeadlineExceeded`]
//!   with every artifact unchanged; the queued mutations survive and the
//!   next flush repairs normally;
//! * **property sweep** — on small random attributed graphs, the repair
//!   path matches the rebuild path for *every* node after *every* event,
//!   including node-growth events that force the rebuild fallback.
//!
//! Failpoint state is process-global, so the cancellation tests serialize
//! behind one lock and are gated on `failpoint::compiled_in()`.

use pcod::cod::dynamic::{DynamicCod, FlushOutcome};
use pcod::cod::failpoint::{self, Action, Site};
use pcod::cod::Mutation;
use pcod::graph::{AttrTable, FxHashSet};
use pcod::prelude::*;
use proptest::prelude::*;
use rand::prelude::*;
use std::sync::Mutex;

/// Serializes the failpoint tests: the registry is process-global.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `COD_FAILPOINTS=all` (the CI chaos leg) injects a 1ms delay at every
/// site; shrink the long schedule so the run stays bounded.
fn chaos_armed() -> bool {
    std::env::var_os("COD_FAILPOINTS").is_some()
}

/// Seeded configuration — the family that unlocks the repair/patch path.
fn seeded_cfg(threads: usize) -> CodConfig {
    CodConfig {
        k: 2,
        theta: 2,
        parallelism: Parallelism::Threads(threads),
        ..CodConfig::default()
    }
}

/// The answer fields that define bit-identity (source/trace metadata is
/// allowed to differ between serving paths; membership and rank are not).
fn comparable(ans: Option<CodAnswer>) -> Option<(Vec<NodeId>, usize, bool)> {
    ans.map(|a| (a.members, a.rank, a.uncertain))
}

/// A deterministic mutation schedule over a mirrored edge set: inserts
/// draw fresh non-edges, removals draw resident edges (so every event
/// applies), attribute edits re-key a random node within the interned
/// attribute range.
fn random_schedule(g: &AttributedGraph, events: usize, seed: u64) -> Vec<Mutation> {
    let n = g.num_nodes() as NodeId;
    let num_attrs = g.interner().len() as AttrId;
    let mut edges: Vec<(NodeId, NodeId)> = g.csr().edges().collect();
    let mut present: FxHashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schedule = Vec::with_capacity(events);
    for _ in 0..events {
        let kind = rng.random_range(0..10u32);
        let m = if kind < 4 || (kind < 7 && edges.is_empty()) {
            loop {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                let (u, v) = (a.min(b), a.max(b));
                if u != v && !present.contains(&(u, v)) {
                    present.insert((u, v));
                    edges.push((u, v));
                    break Mutation::InsertEdge { u, v };
                }
            }
        } else if kind < 7 {
            let i = rng.random_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            present.remove(&(u, v));
            Mutation::RemoveEdge { u, v }
        } else {
            let node = rng.random_range(0..n);
            let take = rng.random_range(1..3usize);
            let mut attrs: Vec<AttrId> =
                (0..take).map(|_| rng.random_range(0..num_attrs)).collect();
            attrs.sort_unstable();
            attrs.dedup();
            Mutation::SetAttrs { node, attrs }
        };
        schedule.push(m);
    }
    schedule
}

/// The flagship equivalence run (the tentpole's acceptance schedule): a
/// randomized mutation stream on cora-like, served four ways —
///
/// * `a1`/`a2`/`a8`: repair-path instances at 1, 2 and 8 threads, flushed
///   at three *different* cadences (every event / every 3rd / every 7th),
/// * `r`: a `rebuild_threshold = 0` reference whose every flush is a full
///   from-scratch rebuild with the same pinned seed.
///
/// All four must answer probe queries bit-identically after every event,
/// and a fresh instance fed the accumulated mutation log in one batch must
/// agree too. Flush RNG streams are deliberately *different* per instance:
/// the seeded pipeline must never consume them.
#[test]
fn randomized_cora_schedule_repairs_match_rebuilds_across_threads() {
    // The CI chaos leg (1ms delay at every checkpoint) charges every query
    // `samples × |H(q)|` hfs_level sleeps, so realistic graph sizes turn
    // each probe into seconds; the paper's 10-node example still crosses
    // every failpoint site while keeping the leg feasible.
    let (data, events) = if chaos_armed() {
        (pcod::datasets::paper_example(), 16)
    } else {
        (pcod::datasets::cora_like(7), 200)
    };
    let g = &data.graph;
    const SEED: u64 = 0xC0DA;
    let mut a1 = DynamicCod::with_seed(g, seeded_cfg(1), SEED);
    let mut a2 = DynamicCod::with_seed(g, seeded_cfg(2), SEED);
    let mut a8 = DynamicCod::with_seed(g, seeded_cfg(8), SEED);
    for a in [&mut a1, &mut a2, &mut a8] {
        a.set_rebuild_threshold(10.0); // keep the repair path in play
    }
    let mut r = DynamicCod::with_seed(g, seeded_cfg(1), SEED);
    r.set_rebuild_threshold(0.0); // every flush rebuilds from scratch

    let schedule = random_schedule(g, events, 0xEE);
    let edge_events = schedule
        .iter()
        .filter(|m| !matches!(m, Mutation::SetAttrs { .. }))
        .count();
    let probes: [NodeId; 4] = if chaos_armed() {
        [0, 3, 7, 9]
    } else {
        [0, 17, 401, 1234]
    };
    for (i, m) in schedule.iter().enumerate() {
        let applied = a1.apply(m).unwrap();
        assert!(applied, "schedule draws from the mirror, so events apply");
        assert!(a2.apply(m).unwrap());
        assert!(a8.apply(m).unwrap());
        assert!(r.apply(m).unwrap());

        let ev = i as u64;
        let rep = a1.flush(&mut SmallRng::seed_from_u64(ev)).unwrap();
        let ref_rep = r.flush(&mut SmallRng::seed_from_u64(7700 + ev)).unwrap();
        assert_eq!(rep.events, 1);
        if matches!(m, Mutation::SetAttrs { .. }) {
            // Attribute churn never touches the hierarchy on either path.
            assert_eq!(rep.outcome, FlushOutcome::Refreshed, "event {i}");
            assert_eq!(ref_rep.outcome, FlushOutcome::Refreshed, "event {i}");
        } else {
            assert!(
                matches!(rep.outcome, FlushOutcome::Repaired { .. }),
                "event {i}: {rep:?}"
            );
            assert_eq!(ref_rep.outcome, FlushOutcome::Rebuilt, "event {i}");
        }
        // Staggered cadences: a2 and a8 accumulate events across flushes.
        if i % 3 == 2 {
            a2.flush(&mut SmallRng::seed_from_u64(31 + ev)).unwrap();
        }
        if i % 7 == 6 {
            a8.flush(&mut SmallRng::seed_from_u64(77 + ev)).unwrap();
        }

        // Rotating probe after every event: repaired ≡ from-scratch.
        let q = probes[i % probes.len()];
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        let qseed = 100_000 + ev;
        let x = a1
            .query(q, attr, &mut SmallRng::seed_from_u64(qseed))
            .unwrap();
        let y = r
            .query(q, attr, &mut SmallRng::seed_from_u64(qseed))
            .unwrap();
        assert_eq!(
            comparable(x),
            comparable(y),
            "event {i} ({m:?}): repaired diverged from from-scratch at node {q}"
        );

        // Checkpoint: bring every cadence current and sweep the full probe
        // set across all four instances.
        if (i + 1) % 25 == 0 || i + 1 == schedule.len() {
            a2.flush(&mut SmallRng::seed_from_u64(43 + ev)).unwrap();
            a8.flush(&mut SmallRng::seed_from_u64(83 + ev)).unwrap();
            for &q in &probes {
                let attr = g.node_attrs(q).first().copied().unwrap_or(0);
                let qseed = 900_000 + ev * 10 + u64::from(q % 10);
                let reference = comparable(
                    a1.query(q, attr, &mut SmallRng::seed_from_u64(qseed))
                        .unwrap(),
                );
                for (inst, name) in [
                    (&mut a2, "2 threads"),
                    (&mut a8, "8 threads"),
                    (&mut r, "rebuild"),
                ] {
                    let got = comparable(
                        inst.query(q, attr, &mut SmallRng::seed_from_u64(qseed))
                            .unwrap(),
                    );
                    assert_eq!(got, reference, "checkpoint {i}, node {q}: {name} diverged");
                }
            }
        }
    }

    // The repair instance never fell back; the reference never repaired.
    let snap = a1.metrics_snapshot();
    assert_eq!(snap.repairs as usize, edge_events);
    assert_eq!(snap.full_rebuilds, 0);
    let snap = r.metrics_snapshot();
    assert_eq!(snap.repairs, 0);
    assert_eq!(snap.full_rebuilds as usize, edge_events);

    // Every instance logged the identical event stream.
    let log_text = a1.mutation_log().render_text();
    assert_eq!(a1.mutation_log().len(), events);
    assert_eq!(log_text, r.mutation_log().render_text());
    assert_eq!(log_text, a8.mutation_log().render_text());

    // Seed + log replay: a fresh instance fed the whole log in one batch
    // (one big repair) agrees with the instance that lived through it.
    let mut fresh = DynamicCod::with_seed(g, seeded_cfg(1), SEED);
    fresh.set_rebuild_threshold(10.0);
    let log = a1.mutation_log().events().to_vec();
    for m in &log {
        assert!(fresh.apply(m).unwrap());
    }
    let rep = fresh.flush(&mut SmallRng::seed_from_u64(424_242)).unwrap();
    assert_eq!(rep.events, events);
    assert!(
        matches!(rep.outcome, FlushOutcome::Repaired { .. }),
        "{rep:?}"
    );
    for &q in &probes {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        let x = comparable(a1.query(q, attr, &mut SmallRng::seed_from_u64(5)).unwrap());
        let y = comparable(
            fresh
                .query(q, attr, &mut SmallRng::seed_from_u64(5))
                .unwrap(),
        );
        assert_eq!(x, y, "log replay diverged at node {q}");
    }
}

/// Scoped invalidation (the ISSUE's acceptance case): with pools resident
/// for two disjoint attributes, re-keying a node to one of them evicts
/// exactly that attribute's pools — the other attribute's stay resident —
/// and an edit touching neither leaves every pool untouched. Every
/// mutation still bumps the invalidation epoch.
#[test]
fn attribute_edits_evict_only_the_touched_attributes_pools() {
    // Pool-warming queries pay minutes of injected sleeps under the CI
    // chaos leg, and this test crosses no mutation failpoint site (the
    // pool sites have their own chaos coverage in tests/pool_reuse.rs) —
    // the eviction accounting it checks is delay-independent. Skip it.
    if chaos_armed() {
        return;
    }
    let data = pcod::datasets::amazon_like_scaled(300, 9);
    let g = &data.graph;
    let cfg = CodConfig {
        k: 3,
        theta: 15,
        pool: true,
        parallelism: Parallelism::Threads(1),
        ..CodConfig::default()
    };
    let mut d = DynamicCod::with_seed(g, cfg, 77);
    let mut rng = SmallRng::seed_from_u64(1);

    // Warm the pool cache until at least two distinct attributes own
    // pools (index-fast-path queries build none; the compressed fallback
    // does).
    let mut per_attr: Vec<(AttrId, usize)> = Vec::new();
    for q in 0..g.num_nodes() as NodeId {
        let attr = g.node_attrs(q).first().copied().unwrap_or(0);
        if per_attr.iter().any(|&(a, _)| a == attr) {
            continue;
        }
        let before = d.pool_stats().pools;
        let _ = d.query(q, attr, &mut rng).unwrap();
        let after = d.pool_stats().pools;
        if after > before {
            per_attr.push((attr, after - before));
            if per_attr.len() >= 2 {
                break;
            }
        }
    }
    let [(attr_a, pools_a), (attr_b, _)] = per_attr[..] else {
        panic!("no two attributes built pools on this dataset");
    };
    let total = d.pool_stats().pools;
    let num_attrs = g.interner().len() as AttrId;
    let attr_c = (0..num_attrs)
        .find(|a| *a != attr_a && *a != attr_b)
        .expect("a third attribute exists");

    // 1. An edit touching neither pooled attribute: all pools survive,
    //    the epoch still moves (readers must revisit, and may keep).
    let x = (0..g.num_nodes() as NodeId)
        .find(|&v| g.node_attrs(v).iter().all(|&a| a != attr_a && a != attr_b))
        .expect("a node keyed away from both pooled attributes");
    let epoch = d.pool_epoch();
    d.set_attrs(x, vec![attr_c]).unwrap();
    assert_eq!(
        d.pool_stats().pools,
        total,
        "disjoint attribute edit must leave every pool resident"
    );
    assert_eq!(d.pool_epoch(), epoch + 1);
    let evictions_before = d.metrics_snapshot().pool_scoped_evictions;

    // 2. An edit touching `attr_a`: exactly its pools go, `attr_b`'s stay.
    let y = (0..g.num_nodes() as NodeId)
        .find(|&v| v != x && g.node_attrs(v).iter().all(|&a| a != attr_b))
        .expect("a node keyed away from attr_b");
    d.set_attrs(y, vec![attr_a]).unwrap();
    let after = d.pool_stats().pools;
    assert_eq!(
        after,
        total - pools_a,
        "exactly attr {attr_a}'s pools must be evicted"
    );
    assert!(after > 0, "attr {attr_b}'s pools must survive");
    assert_eq!(
        d.metrics_snapshot().pool_scoped_evictions,
        evictions_before + pools_a as u64
    );

    // 3. A topology edit: the unrestricted pools (drawn on the whole
    //    graph) can all be staled by one edge, so residency drops again.
    let before = d.pool_stats().pools;
    let epoch = d.pool_epoch();
    assert!(d.insert_edge(290, 295));
    assert!(
        d.pool_stats().pools < before,
        "an edge edit must evict the unrestricted pools"
    );
    assert_eq!(d.pool_epoch(), epoch + 1);
}

/// A small path-plus-star graph for the cancellation tests (cheap builds,
/// and a single edge edit stays on the repair path).
fn small_graph() -> AttributedGraph {
    let mut b = GraphBuilder::new(10);
    for v in 1..6 {
        b.add_edge(0, v);
    }
    b.add_edge(5, 6);
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    b.add_edge(8, 9);
    let attrs = AttrTable::from_lists(vec![vec![0]; 10]);
    let mut interner = pcod::graph::AttrInterner::new();
    interner.intern("A");
    AttributedGraph::from_parts(b.build(), attrs, interner)
}

/// Drives one failpoint site through the cancel-then-recover cycle:
/// a fired token surfaces as `DeadlineExceeded` with the mutation still
/// queued, and after disarming the same instance repairs and answers
/// exactly like a from-scratch build of the mutated graph.
fn cancelled_flush_recovers(site: Site) {
    if !failpoint::compiled_in() {
        return;
    }
    let _lock = guard();
    let g = small_graph();
    let mut d = DynamicCod::with_seed(&g, seeded_cfg(1), 4242);
    d.set_rebuild_threshold(10.0);
    assert!(d.insert_edge(2, 9));

    failpoint::disarm_all();
    failpoint::arm(site, Action::Cancel);
    let token = CancelToken::unlimited();
    let mut rng = SmallRng::seed_from_u64(1);
    let err = d.flush_governed(&mut rng, Some(&token)).unwrap_err();
    assert!(
        matches!(err, CodError::DeadlineExceeded),
        "{site:?}: fired token must surface as DeadlineExceeded, got {err}"
    );
    assert_eq!(
        d.pending_edits(),
        1,
        "{site:?}: a cancelled flush must keep the mutation queued"
    );
    failpoint::disarm_all();

    // Recovery: the same instance, a fresh (unfired) token, a clean repair.
    let rep = d
        .flush_governed(&mut rng, Some(&CancelToken::unlimited()))
        .unwrap();
    assert!(
        matches!(rep.outcome, FlushOutcome::Repaired { .. }),
        "{site:?}: {rep:?}"
    );
    assert_eq!(rep.events, 1, "{site:?}: queued event count survived");

    let mut fresh = {
        let mut b = GraphBuilder::new(10);
        for v in 1..6 {
            b.add_edge(0, v);
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        b.add_edge(8, 9);
        b.add_edge(2, 9);
        let attrs = AttrTable::from_lists(vec![vec![0]; 10]);
        let mut interner = pcod::graph::AttrInterner::new();
        interner.intern("A");
        let g2 = AttributedGraph::from_parts(b.build(), attrs, interner);
        DynamicCod::with_seed(&g2, seeded_cfg(1), 4242)
    };
    for q in 0..10u32 {
        let x = comparable(d.query(q, 0, &mut SmallRng::seed_from_u64(9)).unwrap());
        let y = comparable(fresh.query(q, 0, &mut SmallRng::seed_from_u64(9)).unwrap());
        assert_eq!(x, y, "{site:?}: node {q} diverged after recovery");
    }
}

#[test]
fn cancelled_dendro_repair_keeps_mutations_queued_and_recovers() {
    cancelled_flush_recovers(Site::DendroRepair);
}

#[test]
fn cancelled_himor_patch_keeps_mutations_queued_and_recovers() {
    cancelled_flush_recovers(Site::HimorPatch);
}

/// A random connected attributed graph: spanning tree + extra edges,
/// three interned attributes assigned round-robin with a seeded twist.
fn random_attributed(n: usize, extra: usize, seed: u64) -> AttributedGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        let u = rng.random_range(0..v);
        b.add_edge(u, v);
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        b.add_edge(u, v);
    }
    let lists = (0..n)
        .map(|v| vec![((v as u64 + seed) % 3) as AttrId])
        .collect();
    let mut interner = pcod::graph::AttrInterner::new();
    for name in ["A", "B", "C"] {
        interner.intern(name);
    }
    AttributedGraph::from_parts(b.build(), AttrTable::from_lists(lists), interner)
}

proptest! {
    // 12 cases normally; 3 under the delay-everywhere CI chaos leg, where
    // each case pays ~25s of injected checkpoint sleeps.
    #![proptest_config(ProptestConfig::with_cases(if chaos_armed() { 3 } else { 12 }))]

    /// On random small graphs, the repair path and the rebuild-every-time
    /// path answer identically for **every** node after **every** event —
    /// including node-growth inserts, which force the repair instance
    /// through its rebuild fallback.
    #[test]
    fn repaired_equals_rebuilt_for_every_node_after_every_event(
        n in 12usize..28,
        extra in 0usize..20,
        seed in 0u64..500,
    ) {
        let g = random_attributed(n, extra, seed);
        let cfg = CodConfig {
            k: 2,
            theta: 8,
            parallelism: Parallelism::Threads(2),
            ..CodConfig::default()
        };
        let mut a = DynamicCod::with_seed(&g, cfg, 0xBEEF);
        a.set_rebuild_threshold(10.0);
        let mut r = DynamicCod::with_seed(&g, cfg, 0xBEEF);
        r.set_rebuild_threshold(0.0);

        let mut edges: Vec<(NodeId, NodeId)> = g.csr().edges().collect();
        let mut present: FxHashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut nodes = n as NodeId;
        for i in 0..6u64 {
            let kind = rng.random_range(0..10u32);
            let m = if kind < 3 {
                // Growth: a brand-new node attaches — repair must fall
                // back to a rebuild and still agree.
                let u = rng.random_range(0..nodes);
                let v = nodes;
                nodes += 1;
                present.insert((u, v));
                edges.push((u, v));
                Mutation::InsertEdge { u, v }
            } else if kind < 6 {
                loop {
                    let a0 = rng.random_range(0..nodes);
                    let b0 = rng.random_range(0..nodes);
                    let (u, v) = (a0.min(b0), a0.max(b0));
                    if u != v && !present.contains(&(u, v)) {
                        present.insert((u, v));
                        edges.push((u, v));
                        break Mutation::InsertEdge { u, v };
                    }
                }
            } else if kind < 8 && !edges.is_empty() {
                let j = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(j);
                present.remove(&(u, v));
                Mutation::RemoveEdge { u, v }
            } else {
                let node = rng.random_range(0..nodes);
                Mutation::SetAttrs { node, attrs: vec![rng.random_range(0..3)] }
            };
            prop_assert!(a.apply(&m).unwrap());
            prop_assert!(r.apply(&m).unwrap());
            a.flush(&mut SmallRng::seed_from_u64(i)).unwrap();
            r.flush(&mut SmallRng::seed_from_u64(1000 + i)).unwrap();
            // Every node normally; every 5th under the CI chaos leg, where
            // each probe pays injected checkpoint sleeps on both instances.
            let stride = if chaos_armed() { 5 } else { 1 };
            for q in (0..nodes).step_by(stride) {
                let attr = (u64::from(q) % 3) as AttrId;
                let qseed = i * 1000 + u64::from(q);
                let x = comparable(a.query(q, attr, &mut SmallRng::seed_from_u64(qseed)).unwrap());
                let y = comparable(r.query(q, attr, &mut SmallRng::seed_from_u64(qseed)).unwrap());
                prop_assert_eq!(x, y, "event {} node {}: {:?}", i, q, m);
            }
        }
    }
}
