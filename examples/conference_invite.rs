//! Scenario from the paper's §IV intro: organizing an academic conference.
//!
//! "To organize an academic conference on a certain research area, one may
//! send invitations to a characteristic community that comprises
//! researchers in the area."
//!
//! We build a DBLP-like coauthor network (publication-venue communities
//! sharing a topic attribute), pick an organizer, and compare the invitee
//! list produced by CODL against the ACQ / ATC / CAC community-search
//! baselines — reproducing the Example-1 contrast from the paper's
//! introduction.
//!
//! Run with: `cargo run --release --example conference_invite`

use cod_search::atc::AtcParams;
use pcod::graph::measures;
use pcod::prelude::*;
use rand::prelude::*;

fn main() {
    let seed = 7;
    let data = pcod::datasets::dblp_like_scaled(4000, seed);
    let g = &data.graph;
    println!(
        "coauthor network: {} researchers, {} collaborations, {} topics",
        g.num_nodes(),
        g.num_edges(),
        g.num_attrs()
    );

    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = CodConfig {
        k: 3,
        theta: 20,
        ..CodConfig::default()
    };
    let codl = Codl::new(g, cfg, &mut rng);

    // Pick organizers: nodes with a topic attribute and decent degree.
    let organizers: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.degree(v) >= 6 && !g.node_attrs(v).is_empty())
        .take(3)
        .collect();

    for &q in &organizers {
        let topic = g.node_attrs(q)[0];
        let topic_name = g.interner().name(topic).unwrap_or("?").to_owned();
        println!("\n== organizer v{q}, topic {topic_name} ==");

        match codl.query(q, topic, &mut rng).expect("valid query") {
            Some(ans) => {
                println!(
                    "CODL invites {} researchers (organizer influence rank {}; source {:?})",
                    ans.size(),
                    ans.rank,
                    ans.source
                );
                println!(
                    "   topology density {:.3}, topic density {:.3}, conductance {:.3}",
                    measures::topology_density(g.csr(), &ans.members),
                    measures::attribute_density(g, &ans.members, topic),
                    measures::conductance(g.csr(), &ans.members),
                );
            }
            None => println!("CODL: no community where the organizer is top-{}", cfg.k),
        }

        let acq = cod_search::acq_query(g, q, topic, 2);
        let atc = cod_search::atc_query(g, q, topic, AtcParams::default());
        let cac = cod_search::cac_query(g, q, topic);
        for (name, res) in [("ACQ", acq), ("ATC", atc), ("CAC", cac)] {
            match res {
                Some(c) => println!(
                    "{name} finds {} researchers (density {:.3}) — influence not considered",
                    c.len(),
                    measures::topology_density(g.csr(), &c)
                ),
                None => println!("{name}: no community"),
            }
        }
    }
}
