//! Community-based social marketing (the paper's §I motivation): find, for
//! each candidate promoter, the widest community in which their voice
//! actually carries — then rank promoters by reach.
//!
//! We build a retweet-like social network (hub-skewed, two "interest"
//! labels), take a set of mid-tier candidate promoters, and use CODL to
//! compute each one's characteristic community for the campaign topic. A
//! promoter with a larger characteristic community can credibly run the
//! campaign at a larger scale.
//!
//! Run with: `cargo run --release --example brand_promoters`

use pcod::graph::measures;
use pcod::prelude::*;
use rand::prelude::*;

fn main() {
    let seed = 11;
    let mut rng = SmallRng::seed_from_u64(seed);
    // A smaller retweet-like network so the example runs in seconds.
    let data = pcod::datasets::by_name("cora", seed).unwrap();
    let g = &data.graph;
    println!(
        "social network: {} users, {} follow edges, {} interests",
        g.num_nodes(),
        g.num_edges(),
        g.num_attrs()
    );

    let cfg = CodConfig {
        k: 5,
        theta: 20,
        ..CodConfig::default()
    };
    let codl = Codl::new(g, cfg, &mut rng);

    // Candidate promoters: users interested in the campaign topic.
    let topic = 0; // campaign topic = attribute 0
    let candidates: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.has_attr(v, topic) && g.degree(v) >= 3)
        .take(12)
        .collect();
    println!(
        "evaluating {} candidate promoters for topic {:?} (k = {})",
        candidates.len(),
        g.interner().name(topic).unwrap_or("0"),
        cfg.k
    );

    let mut ranked: Vec<(NodeId, usize, f64)> = Vec::new();
    for &q in &candidates {
        if let Some(ans) = codl.query(q, topic, &mut rng).expect("valid query") {
            let density = measures::attribute_density(g, &ans.members, topic);
            ranked.push((q, ans.size(), density));
        }
    }
    ranked.sort_by_key(|r| std::cmp::Reverse(r.1));

    println!("\npromoter | community size | topic density");
    println!("---------+----------------+--------------");
    for (q, size, density) in ranked.iter().take(10) {
        println!("{q:8} | {size:14} | {density:13.3}");
    }
    match ranked.first() {
        Some((q, size, _)) => {
            println!("\nbest promoter: user {q} — influential across a {size}-user community")
        }
        None => println!(
            "\nno candidate has a characteristic community at k = {}",
            cfg.k
        ),
    }
}
