//! Explore a node's hierarchical communities and influence profile — a
//! walk-through of the machinery behind COD (paper §II–§III).
//!
//! Prints the chain `H(q)`, the reclustering scores LORE computes for each
//! level, and the estimated influence rank of `q` per community, showing
//! the non-monotonicity of ranks (Lemma 1) that makes COD require scanning
//! the entire chain.
//!
//! Run with: `cargo run --release --example hierarchy_explorer [node]`

use pcod::cod::chain::Chain;
use pcod::cod::{compressed::compressed_cod, lore, recluster};
use pcod::prelude::*;
use rand::prelude::*;

fn main() {
    let q: NodeId = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let seed = 3;
    let data = pcod::datasets::citeseer_like(seed);
    let g = &data.graph;
    let attr = g.node_attrs(q).first().copied().unwrap_or(0);

    println!(
        "dataset {}: {} nodes / {} edges; query node {q}, attribute {}",
        data.name,
        g.num_nodes(),
        g.num_edges(),
        g.interner().name(attr).unwrap_or("?")
    );

    // Build the non-attributed hierarchy T.
    let dendro = recluster::build_hierarchy(g.csr(), Linkage::Average);
    let lca = LcaIndex::new(&dendro);
    let chain = DendroChain::new(&dendro, &lca, q).unwrap();
    println!("|H(q)| = {} hierarchical communities", chain.len());

    // LORE's reclustering scores along the chain.
    let scores = lore::recluster_scores(g, &dendro, &lca, q, attr).unwrap_or_default();
    let choice = lore::select_recluster_community(g, &dendro, &lca, q, attr);

    // Influence rank of q in every community (compressed evaluation).
    let mut rng = SmallRng::seed_from_u64(seed);
    let k = 5;
    let out = compressed_cod(g.csr(), Model::WeightedCascade, &chain, q, k, 30, &mut rng).unwrap();

    println!("\nlevel | size     | depth | r(C)     | rank(q) | top-{k}?");
    println!("------+----------+-------+----------+---------+-------");
    let show = chain.len().min(24);
    for h in 0..show {
        let marker = match &choice {
            Some(c) if c.chain_index == h => " <- C_l (LORE reclusters here)",
            _ => "",
        };
        println!(
            "{h:5} | {:8} | {:5} | {:8.4} | {:7} | {}{marker}",
            chain.size(h),
            chain.len() - h,
            scores.get(h).copied().unwrap_or(0.0),
            out.ranks[h],
            if out.ranks[h] <= k { "yes" } else { "no" },
        );
    }
    if chain.len() > show {
        println!("... ({} more levels)", chain.len() - show);
    }

    match out.best_level {
        Some(h) => println!(
            "\ncharacteristic community C*(q): level {h}, {} nodes (largest with rank <= {k})",
            chain.size(h)
        ),
        None => println!("\nno community on the chain has rank(q) <= {k}"),
    }

    // Show the non-monotonicity the paper's Lemma 1 asserts.
    let mut dips = 0;
    for w in out.ranks.windows(2) {
        if w[1] < w[0] {
            dips += 1;
        }
    }
    println!(
        "rank sequence has {dips} decreasing step(s): influence rank is non-monotone in depth"
    );
}
