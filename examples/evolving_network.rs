//! COD on an evolving network, with a persistent index.
//!
//! Demonstrates the two deployment features beyond the paper's core
//! algorithms: [`pcod::cod::dynamic::DynamicCod`] (the paper's §VI
//! future-work direction — queries on a graph receiving edge edits) and
//! [`pcod::cod::persist`] (saving the HIMOR index across sessions).
//!
//! Run with: `cargo run --release --example evolving_network`

use pcod::cod::dynamic::DynamicCod;
use pcod::cod::persist::{load_index, save_index};
use pcod::prelude::*;
use rand::prelude::*;

fn main() {
    let seed = 9;
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = pcod::datasets::citeseer_like(seed);
    let g = &data.graph;
    println!(
        "initial network: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let cfg = CodConfig {
        k: 3,
        theta: 15,
        ..CodConfig::default()
    };

    // --- Persistence: build once, save, reload --------------------------
    let codl = Codl::new(g, cfg, &mut rng);
    let path = std::env::temp_dir().join("citeseer.codx");
    let (dendro, _) = codl.hierarchy();
    save_index(&path, dendro, codl.index()).expect("save index");
    println!(
        "saved HIMOR index ({} KB) to {}",
        codl.index().memory_bytes() / 1024,
        path.display()
    );
    let (dendro2, index2) = load_index(&path).expect("reload index");
    let lca2 = LcaIndex::new(&dendro2);
    let codl2 = Codl::from_parts(g, cfg, dendro2, lca2, index2);
    let q = 17;
    let attr = g.node_attrs(q)[0];
    let before = codl2.query(q, attr, &mut rng).expect("valid query");
    println!(
        "query from the reloaded index: node {q} -> {:?}",
        before.as_ref().map(|a| a.size())
    );

    // --- Dynamics: edits + fresh-influence queries ----------------------
    let mut dynamic = DynamicCod::new(g, cfg, &mut rng);
    println!("\nsimulating growth around node {q}...");
    // Node q gains a cluster of new collaborators.
    let base = g.num_nodes() as NodeId;
    for i in 0..6 {
        dynamic.insert_edge(q, base + i);
        dynamic.set_attrs(base + i, vec![attr]).expect("in range");
    }
    for i in 0..6 {
        for j in i + 1..6 {
            dynamic.insert_edge(base + i, base + j);
        }
    }
    println!(
        "{} edits pending; index fast path for {q}: {}",
        dynamic.pending_edits(),
        dynamic.index_usable_for(q)
    );
    let after = dynamic.query(q, attr, &mut rng).expect("valid query");
    println!(
        "query on the evolved graph: node {q} -> {:?} members",
        after.as_ref().map(|a| a.size())
    );
    dynamic.rebuild(&mut rng);
    let rebuilt = dynamic.query(q, attr, &mut rng).expect("valid query");
    println!(
        "after full rebuild: node {q} -> {:?} members (index usable: {})",
        rebuilt.as_ref().map(|a| a.size()),
        dynamic.index_usable_for(q)
    );
    std::fs::remove_file(&path).ok();
}
