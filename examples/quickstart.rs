//! Quickstart: find the characteristic community of a node in the paper's
//! running example (Fig. 2 graph with Fig. 5 attributes).
//!
//! Run with: `cargo run --release --example quickstart`

use pcod::prelude::*;
use rand::prelude::*;

fn main() {
    let data = pcod::datasets::paper_example();
    let g = &data.graph;
    let db = g.interner().get("DB").expect("DB attribute");

    println!(
        "graph: {} nodes, {} edges, {} attributes",
        g.num_nodes(),
        g.num_edges(),
        g.num_attrs()
    );

    let mut rng = SmallRng::seed_from_u64(42);

    // The fully optimized method: LORE + HIMOR index. A looser rank
    // requirement k yields larger characteristic communities (Fig. 7).
    for k in 1..=3 {
        let cfg = CodConfig {
            k,
            theta: 500, // generous sampling: the example graph is tiny
            ..CodConfig::default()
        };
        let codl = Codl::new(g, cfg, &mut rng);
        for q in [0u32, 6] {
            match codl.query(q, db, &mut rng).expect("valid query") {
                Some(ans) => println!(
                    "k={k}: characteristic community of v{q} is {:?} — rank {} via {:?}",
                    ans.members, ans.rank, ans.source
                ),
                None => println!("k={k}: v{q} has no community where it is top-{k}"),
            }
        }
    }

    // Compare with the naive non-attributed variant (CODU).
    let cfg = CodConfig {
        k: 2,
        theta: 500,
        ..CodConfig::default()
    };
    let codu = Codu::new(g, cfg);
    for q in [0u32, 6] {
        match codu.query(q, &mut rng).expect("valid query") {
            Some(ans) => println!(
                "CODU answer for v{q}: {:?} (rank {})",
                ans.members, ans.rank
            ),
            None => println!("CODU: no answer for v{q}"),
        }
    }
}
